package satpg

import (
	"math/rand"
	"testing"

	"repro/internal/randckt"
)

// The shard parity suite: a coverage measurement cut into N fault-class
// shards (FaultSimBatchShard) and folded back together
// (MergeCoverageShards) must be bit-identical to the single-process
// FaultSimBatch — per fault, not just in aggregate.  This is the
// correctness contract the distributed satpgd coordinator rests on.

// shardCircuits returns the parity corpus: one multi-word random
// feedback circuit plus the committed ISCAS translations.
func shardCircuits(t *testing.T) map[string]*Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	rc, ok := randckt.New(rng, randckt.Config{
		MinInputs: 4, MaxInputs: 6,
		MinGates: 60, MaxGates: 90,
	})
	if !ok {
		t.Fatal("no stable random circuit at seed 41")
	}
	ckts := map[string]*Circuit{
		"randckt": rc,
		"s27":     loadCorpus(t, "s27.ckt"),
	}
	if !testing.Short() {
		ckts["s349"] = loadCorpus(t, "s349.ckt")
	}
	return ckts
}

// assertShardParity measures `tests` under `sel` whole and in
// 1/2/4-way shard partitions, and requires every per-fault verdict of
// every merged report to equal the unsharded one exactly.
func assertShardParity(t *testing.T, name string, c *Circuit, sel FaultSelection, tests []Test) {
	t.Helper()
	opts := Options{Faults: sel}
	whole, err := FaultSimBatch(c, InputStuckAt, tests, opts)
	if err != nil {
		t.Fatalf("%s/%v: %v", name, sel, err)
	}
	for _, shards := range []int{1, 2, 4} {
		reports := make([]*CoverageReport, shards)
		for s := 0; s < shards; s++ {
			reports[s], err = FaultSimBatchShard(c, InputStuckAt, tests, s, shards, opts)
			if err != nil {
				t.Fatalf("%s/%v shard %d/%d: %v", name, sel, s, shards, err)
			}
		}
		merged, err := MergeCoverageShards(reports)
		if err != nil {
			t.Fatalf("%s/%v merge %d shards: %v", name, sel, shards, err)
		}
		if merged.Total != whole.Total || merged.Detected != whole.Detected {
			t.Errorf("%s/%v %d shards: merged cov %d/%d, single-process %d/%d",
				name, sel, shards, merged.Detected, merged.Total, whole.Detected, whole.Total)
		}
		for fi := range whole.PerFault {
			w, m := whole.PerFault[fi], merged.PerFault[fi]
			if w.Detected != m.Detected || w.TestIndex != m.TestIndex || w.Cycle != m.Cycle {
				t.Errorf("%s/%v %d shards fault %s: merged {det=%v test=%d cyc=%d} single {det=%v test=%d cyc=%d}",
					name, sel, shards, w.Fault.Describe(c),
					m.Detected, m.TestIndex, m.Cycle, w.Detected, w.TestIndex, w.Cycle)
			}
		}
		// The shard partition itself must be disjoint and covering —
		// MergeCoverageShards enforces it, but assert the per-shard
		// universes really were restricted (every multi-shard report
		// leaves some faults unowned on a non-trivial universe).
		if shards > 1 && whole.Total > 1 {
			for s, r := range reports {
				owned := 0
				for _, o := range r.Owned {
					if o {
						owned++
					}
				}
				if owned == whole.Total {
					t.Errorf("%s/%v shard %d/%d owns the whole universe — no partition happened",
						name, sel, s, shards)
				}
			}
		}
	}
}

// TestShardParityAcrossModels: verdict bitsets folded from 1, 2 and 4
// shards must match the single-process run for every (fault, test)
// pair, on random feedback circuits and the ISCAS corpus, under the
// stuck-at, transition, and combined universes.
func TestShardParityAcrossModels(t *testing.T) {
	for name, c := range shardCircuits(t) {
		res, err := GenerateDirect(c, InputStuckAt, Options{Seed: 5, RandomSequences: 24, RandomLength: 10})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tests) == 0 {
			t.Fatalf("%s: direct flow produced no tests", name)
		}
		for _, sel := range []FaultSelection{SelectStuckAt, SelectTransition, SelectBoth} {
			assertShardParity(t, name, c, sel, res.Tests)
		}
	}
}

// TestShardParityWithoutExpected exercises the service-shaped form of
// the same contract: bare pattern programs (no declared responses) are
// judged against the good machine's own outputs, and sharding must not
// change a single verdict there either.
func TestShardParityWithoutExpected(t *testing.T) {
	c := loadCorpus(t, "s27.ckt")
	rng := rand.New(rand.NewSource(17))
	mask := uint64(1)<<uint(c.NumInputs()) - 1
	tests := make([]Test, 96)
	for i := range tests {
		pats := make([]uint64, 8)
		for j := range pats {
			pats[j] = rng.Uint64() & mask
		}
		tests[i] = Test{Patterns: pats}
	}
	assertShardParity(t, "s27-bare", c, SelectBoth, tests)
}

// TestShardRangeRejected: out-of-range shard indices fail loudly.
func TestShardRangeRejected(t *testing.T) {
	c := loadCorpus(t, "s27.ckt")
	tests := []Test{{Patterns: []uint64{1, 2, 3}}}
	for _, tc := range []struct{ shard, shards int }{{2, 2}, {-1, 2}, {4, 4}} {
		if _, err := FaultSimBatchShard(c, InputStuckAt, tests, tc.shard, tc.shards, Options{}); err == nil {
			t.Errorf("shard %d/%d accepted; want out-of-range error", tc.shard, tc.shards)
		}
	}
}
