package satpg

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/randckt"
	"repro/internal/sim"
)

// The multi-word differential suite: circuits past the 64-signal
// single-word ceiling must behave bit-identically to the scalar ternary
// oracle, across both fault-simulation engines and every lane width,
// and a ≤64-signal circuit pushed through the multi-word paths (via
// SetMinStateWords) must reproduce its single-word verdicts exactly.

func loadCorpus(t *testing.T, name string) *Circuit {
	t.Helper()
	path := filepath.Join("examples", "iscas", name)
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("corpus %s: %v (regenerate with `go run ./examples/iscas`)", name, err)
	}
	defer f.Close()
	c, err := ParseCircuit(f, path)
	if err != nil {
		t.Fatalf("corpus %s: %v", name, err)
	}
	return c
}

// TestISCASCorpusLoads pins the committed corpus: the files must parse,
// validate, and land on their intended packed-state word counts.
func TestISCASCorpusLoads(t *testing.T) {
	want := []struct {
		file           string
		signals, words int
	}{
		{"s27.ckt", 29, 1},
		{"s349.ckt", 363, 6},
		{"s953.ckt", 989, 16},
	}
	for _, w := range want {
		c := loadCorpus(t, w.file)
		if c.NumSignals() != w.signals || c.StateWords() != w.words {
			t.Errorf("%s: %d signals in %d words, want %d in %d",
				w.file, c.NumSignals(), c.StateWords(), w.signals, w.words)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", w.file, err)
		}
	}
}

// scalarOracleDetects replays the whole test set (and the reset
// observation) against one fault on the scalar ternary machine — the
// size-agnostic ground truth the batched engines must reproduce.
func scalarOracleDetects(c *Circuit, f Fault, tests []Test) bool {
	goodReset := sim.Machine{C: c}.InitState()
	badReset := sim.Machine{C: c, Fault: &f}.InitState()
	for _, s := range c.Outputs {
		g, b := goodReset[s], badReset[s]
		if g.IsDefinite() && b.IsDefinite() && g != b {
			return true
		}
	}
	for _, tst := range tests {
		if VerifyTestDirect(c, f, tst) {
			return true
		}
	}
	return false
}

// crossEngineCompare measures the tests under both engines at one lane
// width and requires identical per-fault verdicts; it returns the event
// engine's report for further checking.
func crossEngineCompare(t *testing.T, c *Circuit, model FaultModel, tests []Test, lanes int) *CoverageReport {
	t.Helper()
	ev, err := FaultSimBatch(c, model, tests, Options{FaultSimLanes: lanes, FaultSimEngine: EventEngine})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := FaultSimBatch(c, model, tests, Options{FaultSimLanes: lanes, FaultSimEngine: SweepEngine})
	if err != nil {
		t.Fatal(err)
	}
	for fi := range ev.PerFault {
		e, s := ev.PerFault[fi], sw.PerFault[fi]
		if e.Detected != s.Detected || e.TestIndex != s.TestIndex || e.Cycle != s.Cycle {
			t.Errorf("%s lanes=%d fault %s: event {det=%v test=%d cyc=%d} sweep {det=%v test=%d cyc=%d}",
				c.Name, lanes, e.Fault.Describe(c),
				e.Detected, e.TestIndex, e.Cycle, s.Detected, s.TestIndex, s.Cycle)
		}
	}
	return ev
}

// TestDirectFlowOracleOnCorpus runs the direct flow on the corpus and
// checks (a) every kept test and credited detection replays on the
// scalar oracle, (b) event and sweep engines agree verdict for verdict
// at every lane width on the generated tests.
func TestDirectFlowOracleOnCorpus(t *testing.T) {
	files := []string{"s27.ckt", "s349.ckt"}
	if !testing.Short() {
		files = append(files, "s953.ckt")
	}
	for _, file := range files {
		c := loadCorpus(t, file)
		opts := Options{Seed: 1, RandomSequences: 48, RandomLength: 16}
		if file == "s953.ckt" {
			opts.RandomSequences, opts.RandomLength = 24, 12
		}
		res, err := GenerateDirect(c, InputStuckAt, opts)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if res.Covered == 0 || len(res.Tests) == 0 {
			t.Fatalf("%s: direct flow produced no detections (%d tests)", file, len(res.Tests))
		}
		if err := ValidateDirect(c, res); err != nil {
			t.Errorf("%s: %v", file, err)
		}
		lanes := []int{64, 128, 256}
		if file == "s953.ckt" {
			lanes = []int{256}
		}
		for _, lw := range lanes {
			crossEngineCompare(t, c, InputStuckAt, res.Tests, lw)
		}
	}
}

// TestMultiWordEnginesMatchScalarOracle cross-validates the multi-word
// engines on random feedback circuits at 65–300 signals: both engines
// at every lane width must agree with each other on every fault, and
// with the scalar ternary machine on a sampled subset.
func TestMultiWordEnginesMatchScalarOracle(t *testing.T) {
	type band struct{ minGates, maxGates int }
	bands := []band{{70, 90}, {120, 150}, {260, 290}}
	if testing.Short() {
		bands = bands[:1]
	}
	for bi, b := range bands {
		rng := rand.New(rand.NewSource(int64(100 + bi)))
		c, ok := randckt.New(rng, randckt.Config{
			MinInputs: 4, MaxInputs: 6,
			MinGates: b.minGates, MaxGates: b.maxGates,
		})
		if !ok {
			t.Fatalf("band %d: no stable random circuit", bi)
		}
		if c.NumSignals() <= MaxExplicitSignals {
			t.Fatalf("band %d: circuit %s has only %d signals", bi, c.Name, c.NumSignals())
		}
		res, err := GenerateDirect(c, InputStuckAt, Options{Seed: 7, RandomSequences: 32, RandomLength: 12})
		if err != nil {
			t.Fatalf("band %d (%s): %v", bi, c.Name, err)
		}
		t.Logf("band %d: %s, %d signals (%d words), %d tests, cov %d/%d",
			bi, c.Name, c.NumSignals(), c.StateWords(), len(res.Tests), res.Covered, res.Total)
		var rep *CoverageReport
		for _, lw := range []int{64, 128, 256} {
			rep = crossEngineCompare(t, c, InputStuckAt, res.Tests, lw)
		}
		// Scalar spot-check: every 7th fault's verdict must match a full
		// replay on the ternary machine.
		for fi := 0; fi < len(rep.PerFault); fi += 7 {
			fc := rep.PerFault[fi]
			if got := scalarOracleDetects(c, fc.Fault, res.Tests); got != fc.Detected {
				t.Errorf("band %d fault %s: fsim det=%v, scalar oracle det=%v",
					bi, fc.Fault.Describe(c), fc.Detected, got)
			}
		}
	}
}

// TestSingleVsMultiWordBitEquality pushes the Table-1 suite through the
// multi-word engine paths (SetMinStateWords forces two state words on
// circuits that fit one) and requires verdicts bit-identical to the
// single-word fast path, for both fault models and both engines.
func TestSingleVsMultiWordBitEquality(t *testing.T) {
	suite := SpeedIndependentSuite()
	if testing.Short() {
		suite = suite[:3]
	}
	for _, bm := range suite {
		_, res, err := GenerateForCircuit(bm.Circuit, InputStuckAt, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		forced := bm.Circuit.Clone()
		forced.SetMinStateWords(2)
		for _, model := range []FaultModel{OutputStuckAt, InputStuckAt} {
			for _, engine := range []FaultSimEngine{EventEngine, SweepEngine} {
				one, err := FaultSimBatch(bm.Circuit, model, res.Tests, Options{FaultSimEngine: engine})
				if err != nil {
					t.Fatalf("%s: %v", bm.Name, err)
				}
				two, err := FaultSimBatch(forced, model, res.Tests, Options{FaultSimEngine: engine})
				if err != nil {
					t.Fatalf("%s forced: %v", bm.Name, err)
				}
				for fi := range one.PerFault {
					a, b := one.PerFault[fi], two.PerFault[fi]
					if a.Detected != b.Detected || a.TestIndex != b.TestIndex || a.Cycle != b.Cycle {
						t.Errorf("%s %v %v fault %s: 1-word {det=%v test=%d cyc=%d} 2-word {det=%v test=%d cyc=%d}",
							bm.Name, model, engine, a.Fault.Describe(bm.Circuit),
							a.Detected, a.TestIndex, a.Cycle, b.Detected, b.TestIndex, b.Cycle)
					}
				}
			}
		}
		// The direct flow must be equally indifferent to the word count.
		d1, err := GenerateDirect(bm.Circuit, InputStuckAt, Options{Seed: 3, RandomSequences: 16, RandomLength: 8})
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		d2, err := GenerateDirect(forced, InputStuckAt, Options{Seed: 3, RandomSequences: 16, RandomLength: 8})
		if err != nil {
			t.Fatalf("%s forced: %v", bm.Name, err)
		}
		if d1.Covered != d2.Covered || len(d1.Tests) != len(d2.Tests) {
			t.Fatalf("%s: direct flow diverged across word counts: cov %d/%d tests %d vs cov %d/%d tests %d",
				bm.Name, d1.Covered, d1.Total, len(d1.Tests), d2.Covered, d2.Total, len(d2.Tests))
		}
		for i := range d1.Tests {
			for j := range d1.Tests[i].Patterns {
				if d1.Tests[i].Patterns[j] != d2.Tests[i].Patterns[j] ||
					d1.Tests[i].Expected[j] != d2.Tests[i].Expected[j] {
					t.Fatalf("%s: direct test %d cycle %d differs across word counts", bm.Name, i, j)
				}
			}
		}
	}
}
