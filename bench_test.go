package satpg

// Benchmark harness: every table and figure-level claim of the paper's
// evaluation has a bench that regenerates it.  See EXPERIMENTS.md for
// the mapping and the recorded paper-vs-measured comparison.
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/dft"
	"repro/internal/faults"
	"repro/internal/fsim"
	"repro/internal/logic"
	"repro/internal/randckt"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/symb"
)

// benchSuite runs the full two-model ATPG flow for every circuit of a
// suite, reporting fault coverage as a metric — the machinery behind
// Tables 1 and 2.
func benchSuite(b *testing.B, suite []Benchmark) {
	for _, bm := range suite {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			var covered, total int
			for i := 0; i < b.N; i++ {
				g, err := Abstract(bm.Circuit, Options{})
				if err != nil {
					b.Fatal(err)
				}
				out := Generate(g, OutputStuckAt, Options{Seed: 1})
				in := Generate(g, InputStuckAt, Options{Seed: 1})
				covered = out.Covered + in.Covered
				total = out.Total + in.Total
			}
			b.ReportMetric(100*float64(covered)/float64(total), "%cov")
		})
	}
}

// BenchmarkTable1 regenerates Table 1: the speed-independent suite.
func BenchmarkTable1(b *testing.B) { benchSuite(b, SpeedIndependentSuite()) }

// BenchmarkTable2 regenerates Table 2: the hazard-free suite, including
// the redundant trio whose coverage collapses.
func BenchmarkTable2(b *testing.B) { benchSuite(b, HazardFreeSuite()) }

// BenchmarkCSSGConstruction isolates the §4 abstraction cost (the
// symbolic-traversal analogue of the paper's reachability step).
func BenchmarkCSSGConstruction(b *testing.B) {
	for _, ref := range []string{"si/chu150", "si/master-read", "si/mmu", "hf/vbe6a"} {
		c, err := LoadBenchmark(ref)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ref, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Abstract(c, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRandomTPGAblation quantifies the §5.4 claim that random TPG
// covers a large fault fraction at low cost: the same flow with and
// without the random phase.
func BenchmarkRandomTPGAblation(b *testing.B) {
	c, err := LoadBenchmark("si/seq4")
	if err != nil {
		b.Fatal(err)
	}
	g, err := Abstract(c, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("with-random", func(b *testing.B) {
		var rnd int
		for i := 0; i < b.N; i++ {
			res := Generate(g, InputStuckAt, Options{Seed: 1})
			rnd = res.ByPhase[1] // PhaseRandom
		}
		b.ReportMetric(float64(rnd), "rnd-detections")
	})
	b.Run("three-phase-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Generate(g, InputStuckAt, Options{Seed: 1, SkipRandom: true})
		}
	})
}

// BenchmarkParallelVsSerialFaultSim measures the §5.4 parallel
// (64-way) ternary fault simulation against one-at-a-time simulation of
// the same faults over the same vector sequence.
func BenchmarkParallelVsSerialFaultSim(b *testing.B) {
	c, err := LoadBenchmark("si/mmu")
	if err != nil {
		b.Fatal(err)
	}
	fl := faults.InputUniverse(c)
	if len(fl) > sim.Lanes {
		fl = fl[:sim.Lanes]
	}
	patterns := make([]uint64, 24)
	rng := rand.New(rand.NewSource(5))
	g, err := Abstract(c, Options{})
	if err != nil {
		b.Fatal(err)
	}
	node := g.Init
	for i := range patterns {
		edges := g.Edges[node]
		e := edges[rng.Intn(len(edges))]
		patterns[i] = e.Pattern
		node = e.To
	}
	b.Run("parallel-64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par := sim.NewParallel(c, fl)
			for _, p := range patterns {
				par.Apply(p)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for fi := range fl {
				m := sim.Machine{C: c, Fault: &fl[fi]}
				st := m.InitState()
				for _, p := range patterns {
					st = m.Step(st, p)
				}
			}
		}
	})
}

// BenchmarkFaultSimEngines compares the fault-simulation shapes on one
// seeded randckt circuit:
//
//   - serial-per-pattern: the scalar ternary machine, one fault × one
//     sequence at a time (the pre-fsim baseline), on a 64-sequence
//     batch;
//   - sweep-1 / sharded-N: the full-Jacobi-sweep fsim engine on the
//     same 64-sequence batch, full universe (NoCollapse) so the number
//     compares the sweep core itself against the pre-unification
//     engine;
//   - event-1: the event-driven cone-limited engine (the default) on
//     the same batch — same detected set, a fraction of the gate
//     evaluations;
//   - collapsed-1: the default configuration — event engine,
//     representatives only, verdicts fanned out — on the same batch;
//   - wide/<engine>/lanes-64|128|256: a 256-sequence workload chunked
//     by lane width, for both engines — the multi-word throughput and
//     the convergence-coupling comparison.
//
// Every variant drops a fault at its first detection, and every variant
// must report the same detected count — asserted against the scalar
// reference, not merely reported.  fsim variants additionally report
// patterns/sec and gate-evals/pattern.
func BenchmarkFaultSimEngines(b *testing.B) {
	c := benchRandCircuit(b)
	universe := faults.InputUniverse(c)
	const lanes, cycles = 64, 16
	rng := rand.New(rand.NewSource(7))
	mkSeqs := func(n int) [][]uint64 {
		m := c.NumInputs()
		seqs := make([][]uint64, n)
		for l := range seqs {
			seq := make([]uint64, cycles)
			for t := range seq {
				seq[t] = rng.Uint64() & (1<<uint(m) - 1)
			}
			seqs[l] = seq
		}
		return seqs
	}
	seqs := mkSeqs(lanes)
	cl := faults.Collapse(c, universe)
	b.Logf("circuit %s: %d gates, %d faults (%d classes), %d lanes × %d cycles",
		c.Name, c.NumGates(), len(universe), cl.NumClasses, lanes, cycles)
	want := serialFaultSim(c, universe, seqs)

	runEngine := func(b *testing.B, seqs [][]uint64, opts fsim.Options, want int) {
		b.Helper()
		var detected int
		var stats fsim.Stats
		for i := 0; i < b.N; i++ {
			s, err := fsim.New(c, universe, opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.SimulateSequences(seqs, nil, nil, func(int, *fsim.BatchResult) {}); err != nil {
				b.Fatal(err)
			}
			detected = 0
			for fi := range universe {
				if s.Detected(fi) {
					detected++
				}
			}
			stats = s.Stats()
		}
		if detected != want {
			b.Fatalf("engine %+v found %d faults, scalar reference %d", opts, detected, want)
		}
		b.ReportMetric(float64(detected), "detected")
		b.ReportMetric(stats.EvalsPerPattern(), "gate-evals/pattern")
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(stats.Patterns)*float64(b.N)/secs, "patterns/sec")
		}
	}

	b.Run("serial-per-pattern", func(b *testing.B) {
		var detected int
		for i := 0; i < b.N; i++ {
			detected = serialFaultSim(c, universe, seqs)
		}
		if detected != want {
			b.Fatalf("serial baseline nondeterministic: %d vs %d detected", detected, want)
		}
		b.ReportMetric(float64(detected), "detected")
	})
	// The sharded variant always runs with 4 workers so the worker-pool
	// path is measured even on small hosts; on machines with more cores
	// a GOMAXPROCS-wide variant is added too.
	workers := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		name := "sweep-1"
		if w != 1 {
			name = "sharded-" + strconv.Itoa(w)
		}
		w := w
		b.Run(name, func(b *testing.B) {
			runEngine(b, seqs, fsim.Options{Workers: w, Engine: fsim.EngineSweep, NoCollapse: true}, want)
		})
	}
	b.Run("event-1", func(b *testing.B) {
		runEngine(b, seqs, fsim.Options{Workers: 1, Engine: fsim.EngineEvent, NoCollapse: true}, want)
	})
	b.Run("collapsed-1", func(b *testing.B) {
		runEngine(b, seqs, fsim.Options{Workers: 1}, want)
	})

	// Multi-word pattern throughput: the same fault universe against a
	// 256-sequence workload, chunked by lane width, for both engines.
	// A sweep batch settles until its slowest lane converges, which is
	// why 128 sweep lanes were near break-even; the event engine only
	// re-evaluates gates with active lanes, decoupling the batch from
	// its slowest member.
	wideSeqs := mkSeqs(256)
	wideWant := serialFaultSim(c, universe, wideSeqs)
	for _, eng := range []fsim.EngineKind{fsim.EngineSweep, fsim.EngineEvent} {
		for _, lw := range []int{64, 128, 256} {
			eng, lw := eng, lw
			b.Run("wide/"+eng.String()+"/lanes-"+strconv.Itoa(lw), func(b *testing.B) {
				runEngine(b, wideSeqs, fsim.Options{Workers: 1, Lanes: lw, Engine: eng, NoCollapse: true}, wideWant)
				b.ReportMetric(float64(lw), "lanes")
			})
		}
	}
}

// BenchmarkEventVsSweepTable1 measures both fault-simulation engines on
// the Table-1 workload: every speed-independent benchmark circuit, a
// 256-walk random-pattern set, per fault model (input stuck-at, the
// transition universe, and their union), at each lane width.  Reported
// per variant: patterns/sec and gate-evals/pattern — the event engine
// must detect exactly what the sweeps detect while evaluating far
// fewer gates, on the combined universe included.  Sub-benchmark names
// are model/engine/lanes-N, which is the shape cmd/benchjson parses
// into the BENCH_*.json CI artifact.
func BenchmarkEventVsSweepTable1(b *testing.B) {
	suite := SpeedIndependentSuite()
	type workload struct {
		c        *Circuit
		universe []faults.Fault
		seqs     [][]uint64
	}
	const nseq, cycles = 256, 16
	models := []struct {
		name     string
		universe func(c *Circuit) []faults.Fault
	}{
		{"input-sa", faults.InputUniverse},
		{"transition", faults.TransitionUniverse},
		{"both", func(c *Circuit) []faults.Fault {
			return append(faults.InputUniverse(c), faults.TransitionUniverse(c)...)
		}},
	}
	for _, model := range models {
		// A fresh rng per model keeps the sequence sets identical across
		// models, so only the universe varies between variants.
		rng := rand.New(rand.NewSource(13))
		var work []workload
		for _, bm := range suite {
			m := bm.Circuit.NumInputs()
			seqs := make([][]uint64, nseq)
			for l := range seqs {
				seq := make([]uint64, cycles)
				for t := range seq {
					seq[t] = rng.Uint64() & (1<<uint(m) - 1)
				}
				seqs[l] = seq
			}
			work = append(work, workload{
				c:        bm.Circuit,
				universe: model.universe(bm.Circuit),
				seqs:     seqs,
			})
		}
		// detectedAt takes the calling (sub-)benchmark's b: b.Fatal must
		// run on the goroutine of the benchmark it fails.
		detectedAt := func(b *testing.B, eng fsim.EngineKind, lanes int) (int, fsim.Stats) {
			b.Helper()
			total := 0
			var stats fsim.Stats
			for _, w := range work {
				s, err := fsim.New(w.c, w.universe, fsim.Options{Workers: 1, Lanes: lanes, Engine: eng})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.SimulateSequences(w.seqs, nil, nil, func(int, *fsim.BatchResult) {}); err != nil {
					b.Fatal(err)
				}
				for fi := range w.universe {
					if s.Detected(fi) {
						total++
					}
				}
				st := s.Stats()
				stats.Patterns += st.Patterns
				stats.GateEvals += st.GateEvals
			}
			return total, stats
		}
		for _, lanes := range []int{64, 128, 256} {
			wantDet, _ := detectedAt(b, fsim.EngineSweep, lanes)
			for _, eng := range []fsim.EngineKind{fsim.EngineSweep, fsim.EngineEvent} {
				eng, lanes := eng, lanes
				b.Run(model.name+"/"+eng.String()+"/lanes-"+strconv.Itoa(lanes), func(b *testing.B) {
					var det int
					var stats fsim.Stats
					for i := 0; i < b.N; i++ {
						det, stats = detectedAt(b, eng, lanes)
					}
					if det != wantDet {
						b.Fatalf("%s %s at %d lanes detected %d faults, sweep oracle %d",
							model.name, eng, lanes, det, wantDet)
					}
					b.ReportMetric(float64(det), "detected")
					b.ReportMetric(stats.EvalsPerPattern(), "gate-evals/pattern")
					if secs := b.Elapsed().Seconds(); secs > 0 {
						b.ReportMetric(float64(stats.Patterns)*float64(b.N)/secs, "patterns/sec")
					}
				})
			}
		}
	}
}

// BenchmarkISCASScale measures fault-simulation throughput at 10×–100×
// the Table-1 gate counts: the ISCAS89-class corpus spans one, six and
// sixteen packed-state words (s27/s349/s953), so the multi-word engine
// paths are on the clock, not just the single-word fast path.  Each
// sub-benchmark name carries signals-N, which cmd/benchjson lifts into
// the artifact's circuit-size dimension alongside engine and lane
// width; reported metrics are patterns/sec, gate-evals/pattern and the
// detected count.  Event and sweep must agree on the detected count at
// every size and lane width — the multi-word parity assertion at
// benchmark scale.
func BenchmarkISCASScale(b *testing.B) {
	const cycles = 12
	// The full-sweep oracle costs O(classes × gates) per pattern, so the
	// largest circuit runs a smaller sequence set to keep the CI smoke
	// pass to one coffee, not one lunch; throughput metrics are
	// per-pattern and stay comparable.
	nseqOf := map[string]int{"s27": 128, "s349": 128, "s953": 32}
	for _, name := range []string{"s27", "s349", "s953"} {
		nseq := nseqOf[name]
		f, err := os.Open(filepath.Join("examples", "iscas", name+".ckt"))
		if err != nil {
			b.Fatalf("%v (regenerate with `go run ./examples/iscas`)", err)
		}
		c, err := ParseCircuit(f, name)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		universe := faults.InputUniverse(c)
		rng := rand.New(rand.NewSource(29))
		m := c.NumInputs()
		seqs := make([][]uint64, nseq)
		for l := range seqs {
			seq := make([]uint64, cycles)
			for t := range seq {
				seq[t] = rng.Uint64() & (1<<uint(m) - 1)
			}
			seqs[l] = seq
		}
		want := -1
		for _, eng := range []fsim.EngineKind{fsim.EngineSweep, fsim.EngineEvent} {
			for _, lw := range []int{64, 256} {
				eng, lw := eng, lw
				b.Run(fmt.Sprintf("%s/signals-%d/%s/lanes-%d", name, c.NumSignals(), eng, lw), func(b *testing.B) {
					var detected int
					var stats fsim.Stats
					for i := 0; i < b.N; i++ {
						s, err := fsim.New(c, universe, fsim.Options{Workers: 1, Lanes: lw, Engine: eng})
						if err != nil {
							b.Fatal(err)
						}
						if err := s.SimulateSequences(seqs, nil, nil, func(int, *fsim.BatchResult) {}); err != nil {
							b.Fatal(err)
						}
						detected = 0
						for fi := range universe {
							if s.Detected(fi) {
								detected++
							}
						}
						stats = s.Stats()
					}
					if want < 0 {
						want = detected
					} else if detected != want {
						b.Fatalf("%s %s lanes=%d detected %d faults, first variant %d",
							name, eng, lw, detected, want)
					}
					b.ReportMetric(float64(detected), "detected")
					b.ReportMetric(float64(c.NumGates()), "gates")
					b.ReportMetric(float64(c.StateWords()), "state-words")
					b.ReportMetric(stats.EvalsPerPattern(), "gate-evals/pattern")
					if secs := b.Elapsed().Seconds(); secs > 0 {
						b.ReportMetric(float64(stats.Patterns)*float64(b.N)/secs, "patterns/sec")
					}
				})
			}
		}
	}
}

// BenchmarkCompactTable1 measures test-program compaction on the
// Table-1 workload: for each fault model, the full ATPG programs of
// every suite circuit are compacted in each mode.  Reported per
// variant: tests-removed/sec and the aggregate size reduction; the
// model/matrix sub-benchmark isolates the detection-matrix build and
// reports its patterns/sec.  Sub-benchmark names are model/mode, which
// cmd/benchjson lifts into the BENCH artifact.  Every mode variant
// asserts the compaction parity contract — the compacted programs must
// measure bit-identical per-fault coverage — so a coverage-losing pass
// fails the bench-smoke job exactly like a drifting engine.
func BenchmarkCompactTable1(b *testing.B) {
	suite := SpeedIndependentSuite()
	models := []struct {
		name string
		sel  FaultSelection
	}{
		{"input-sa", SelectStuckAt},
		{"transition", SelectTransition},
	}
	for _, model := range models {
		type workload struct {
			c     *Circuit
			progs []Program
			orig  ProgramCoverageSummary
		}
		opts := Options{Seed: 1, Faults: model.sel}
		var work []workload
		for _, bm := range suite {
			g, res, err := GenerateForCircuit(bm.Circuit, InputStuckAt, opts)
			if err != nil {
				b.Fatal(err)
			}
			progs := Programs(g, res)
			orig, err := MeasureProgramCoverage(bm.Circuit, progs, InputStuckAt, opts)
			if err != nil {
				b.Fatal(err)
			}
			work = append(work, workload{bm.Circuit, progs, orig})
		}
		b.Run(model.name+"/matrix", func(b *testing.B) {
			var patterns int64
			for i := 0; i < b.N; i++ {
				patterns = 0
				for _, w := range work {
					mx, err := compact.BuildMatrix(w.c, w.progs,
						faults.SelectUniverse(w.c, faults.InputSA, model.sel), compact.Options{})
					if err != nil {
						b.Fatal(err)
					}
					patterns += mx.Stats.Patterns
				}
			}
			b.ReportMetric(float64(patterns), "patterns")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(patterns)*float64(b.N)/secs, "patterns/sec")
			}
		})
		for _, mode := range []CompactMode{CompactReverse, CompactDominance, CompactGreedy, CompactAll} {
			mode := mode
			b.Run(model.name+"/"+mode.String(), func(b *testing.B) {
				copts := opts
				copts.Compact = mode
				var crs []*CompactionResult
				var removed, before, after int
				for i := 0; i < b.N; i++ {
					crs = crs[:0]
					removed, before, after = 0, 0, 0
					for _, w := range work {
						cr, err := CompactProgram(w.c, w.progs, InputStuckAt, copts)
						if err != nil {
							b.Fatal(err)
						}
						crs = append(crs, cr)
						removed += cr.Before - cr.After
						before += cr.Before
						after += cr.After
					}
				}
				b.StopTimer()
				// Parity: compaction must preserve every per-fault verdict
				// of the measured coverage (the compaction row of the
				// bench-smoke parity assertions).
				for wi, w := range work {
					sum, err := MeasureProgramCoverage(w.c, crs[wi].Programs, InputStuckAt, opts)
					if err != nil {
						b.Fatal(err)
					}
					if !sum.VerdictsEqual(w.orig) {
						b.Fatalf("%s mode %s: compaction changed measured coverage on %s: %d/%d vs %d/%d",
							model.name, mode, w.c.Name, sum.Detected, sum.Total, w.orig.Detected, w.orig.Total)
					}
				}
				b.ReportMetric(float64(removed), "tests-removed")
				b.ReportMetric(100*(1-float64(after)/float64(max(before, 1))), "%reduction")
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(removed)*float64(b.N)/secs, "tests-removed/sec")
				}
			})
		}
	}
}

// benchRandCircuit generates the deterministic workload circuit: the
// first seed whose topology stabilises, sized near the 64-signal cap.
func benchRandCircuit(b *testing.B) *Circuit {
	b.Helper()
	for seed := int64(1); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, ok := randckt.New(rng, randckt.Config{
			MinInputs: 4, MaxInputs: 4, MinGates: 24, MaxGates: 28,
		})
		if ok {
			return c
		}
	}
	b.Fatal("no stable random circuit found")
	return nil
}

// serialFaultSim is the one-fault × one-sequence scalar baseline with
// fault dropping: the cost model fsim is measured against.
func serialFaultSim(c *Circuit, universe []faults.Fault, seqs [][]uint64) int {
	// Good trace per lane.
	good := sim.Machine{C: c}
	goodStates := make([][]logic.Vec, len(seqs))
	for l, seq := range seqs {
		st := good.InitState()
		goodStates[l] = make([]logic.Vec, len(seq))
		for t, p := range seq {
			st = good.Step(st, p)
			goodStates[l][t] = st
		}
	}
	detected := 0
	for fi := range universe {
		fm := sim.Machine{C: c, Fault: &universe[fi]}
	faultLoop:
		for l, seq := range seqs {
			st := fm.InitState()
			for t, p := range seq {
				st = fm.Step(st, p)
				gv := c.OutputVec(goodStates[l][t])
				fv := c.OutputVec(st)
				for j := range gv {
					if gv[j].IsDefinite() && fv[j].IsDefinite() && gv[j] != fv[j] {
						detected++
						break faultLoop // fault dropped
					}
				}
			}
		}
	}
	return detected
}

// BenchmarkKSweep explores the §4.1 trade-off: shorter test cycles
// (smaller k) reject slow-settling vectors, shrinking the CSSG.
func BenchmarkKSweep(b *testing.B) {
	c, err := LoadBenchmark("si/seq4")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{8, 16, 32, 64, 128} {
		k := k
		b.Run(byteCount(k), func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				g, err := Abstract(c, Options{K: k})
				if err != nil {
					b.Fatal(err)
				}
				edges = g.Stats.NumEdges
			}
			b.ReportMetric(float64(edges), "valid-edges")
		})
	}
}

func byteCount(k int) string {
	switch {
	case k < 10:
		return "k=00" + string(rune('0'+k))
	case k < 100:
		return "k=0" + string(rune('0'+k/10)) + string(rune('0'+k%10))
	default:
		return "k=" + string(rune('0'+k/100)) + string(rune('0'+k/10%10)) + string(rune('0'+k%10))
	}
}

// BenchmarkSymbolicVsExplicit compares the paper's BDD-based traversal
// with the explicit engine on the same circuit.
func BenchmarkSymbolicVsExplicit(b *testing.B) {
	c, err := LoadBenchmark("si/vbe5b")
	if err != nil {
		b.Fatal(err)
	}
	k := 2 * c.NumSignals()
	b.Run("explicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(c, core.Options{K: k}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("symbolic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := symb.NewEncoder(c)
			if _, err := e.ExtractEdges(k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTesterValidation measures Monte-Carlo timed validation of a
// generated program (the §2/§6 delay-independence claim).
func BenchmarkTesterValidation(b *testing.B) {
	c, err := LoadBenchmark("si/chu150")
	if err != nil {
		b.Fatal(err)
	}
	g, res, err := GenerateForCircuit(c, InputStuckAt, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ValidateOnTester(g, res, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineComparison measures the §6.1 comparison experiment.
func BenchmarkBaselineComparison(b *testing.B) {
	for _, ref := range []string{"fig1a", "si/converta"} {
		c, err := LoadBenchmark(ref)
		if err != nil {
			b.Fatal(err)
		}
		g, err := Abstract(c, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ref, func(b *testing.B) {
			var opt float64
			for i := 0; i < b.N; i++ {
				cmp := baseline.Compare(g, faults.OutputSA, 200000)
				opt = cmp.Optimism()
			}
			b.ReportMetric(100*opt, "%optimism")
		})
	}
}

// BenchmarkSTGConformance measures the closed-loop verification of the
// pipeline circuit against its handshake specification.
func BenchmarkSTGConformance(b *testing.B) {
	spec, err := ParseSTGString(`
.model pipe2
.inputs Li Ra
.outputs c1 c2
.graph
Li+ c1+
c2- c1+
c1+ Li-
c1+ c2+
Ra- c2+
c2+ Ra+
c2+ c1-
Li- c1-
c1- Li+
c1- c2-
Ra+ c2-
c2- Ra-
.marking { <c1-,Li+> <c2-,c1+> <Ra-,c2+> }
.end
`, "pipe2.g")
	if err != nil {
		b.Fatal(err)
	}
	c, err := ParseCircuitString(`
circuit pipe2
input Li Ra
output c1 c2
gate n1 NOT c2
gate c1 C Li n1
gate n2 NOT Ra
gate c2 C c1 n2
init Li=0 Ra=0 n1=1 c1=0 n2=1 c2=0
`, "pipe2.ckt")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Conform(c, spec)
		if err != nil || !res.OK {
			b.Fatalf("conformance failed: %v %v", err, res)
		}
	}
}

// BenchmarkDFTRecovery measures the §6 test-point experiment: coverage
// before and after inserting a control point on the fork-join demo.
func BenchmarkDFTRecovery(b *testing.B) {
	c := dft.DemoCircuit()
	instrumented, err := InsertTestPoints(c, []TestPoint{{Signal: "bc", Kind: ControlPoint}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("before", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			_, res, err := GenerateForCircuit(c, InputStuckAt, Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			cov = res.Coverage()
		}
		b.ReportMetric(100*cov, "%cov")
	})
	b.Run("after", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			_, res, err := GenerateForCircuit(instrumented, InputStuckAt, Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			cov = res.Coverage()
		}
		b.ReportMetric(100*cov, "%cov")
	})
}

// BenchmarkHazardScan measures the semi-modularity diagnostic over a
// benchmark's valid vectors.
func BenchmarkHazardScan(b *testing.B) {
	c, err := LoadBenchmark("si/chu150")
	if err != nil {
		b.Fatal(err)
	}
	g, err := Abstract(c, Options{})
	if err != nil {
		b.Fatal(err)
	}
	var n int
	for i := 0; i < b.N; i++ {
		n = len(g.Hazards(0))
	}
	b.ReportMetric(float64(n), "glitches")
}

// BenchmarkSymbolicJustification measures the BDD-based realisation of
// ATPG phases 1–2 (activation + justification) against the explicit
// shortest-path search.
func BenchmarkSymbolicJustification(b *testing.B) {
	c, err := LoadBenchmark("si/vbe5b")
	if err != nil {
		b.Fatal(err)
	}
	k := 2 * c.NumSignals()
	g, err := Abstract(c, Options{K: k})
	if err != nil {
		b.Fatal(err)
	}
	fl := faults.OutputUniverse(c)
	b.Run("symbolic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := symb.NewEncoder(c)
			for _, f := range fl {
				e.JustifyFault(k, f)
			}
		}
	})
	b.Run("explicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range fl {
				f := f
				g.ShortestPath(g.Init, func(id int) bool {
					return f.ExcitedIn(c, g.Nodes[id])
				})
			}
		}
	})
}

// BenchmarkTransitionFaults measures the §7 gross-delay extension:
// full transition-fault ATPG (3-phase + exact dropping only).
func BenchmarkTransitionFaults(b *testing.B) {
	for _, ref := range []string{"si/vbe5b", "si/chu150", "si/seq4"} {
		c, err := LoadBenchmark(ref)
		if err != nil {
			b.Fatal(err)
		}
		g, err := Abstract(c, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ref, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				res := Generate(g, TransitionFaults, Options{Seed: 1})
				cov = res.Coverage()
			}
			b.ReportMetric(100*cov, "%cov")
		})
	}
}

// BenchmarkTernarySettle measures one Eichelberger A+B settling pass
// (the inner loop of fault simulation).
func BenchmarkTernarySettle(b *testing.B) {
	c, err := LoadBenchmark("si/master-read")
	if err != nil {
		b.Fatal(err)
	}
	st := sim.TernaryFromPacked(c, c.InitState())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ApplyVector(c, st, uint64(i)&0b1111, nil)
	}
}

// BenchmarkExploreVector measures one exact interleaving exploration
// (the inner loop of CSSG construction) on a racy pattern.
func BenchmarkExploreVector(b *testing.B) {
	c, err := LoadBenchmark("fig1a")
	if err != nil {
		b.Fatal(err)
	}
	init := c.InitState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.AnalyzeVector(c, init, 0b11, core.Options{})
	}
}

// serviceBenchTests builds the deterministic bare-pattern test set the
// service benchmarks replay (seed 29, matching the ISCAS scale bench).
func serviceBenchTests(c *Circuit, nseq, cycles int) []Test {
	rng := rand.New(rand.NewSource(29))
	mask := uint64(1)<<uint(c.NumInputs()) - 1
	tests := make([]Test, nseq)
	for i := range tests {
		pats := make([]uint64, cycles)
		for t := range pats {
			pats[t] = rng.Uint64() & mask
		}
		tests[i] = Test{Patterns: pats}
	}
	return tests
}

// BenchmarkServiceShardThroughput measures the distributed coverage
// flow on the largest corpus member: the representative fault classes
// are cut into 1, 2 and 4 shards (FaultSimBatchShard), measured
// concurrently, and the verdicts merged — the in-process equivalent of
// a satpgd coordinator fanning out over N workers.  Sub-benchmark
// names carry workers-N, which cmd/benchjson lifts into the artifact's
// throughput dimension; the detected count must be identical at every
// shard count (the parity assertion at benchmark scale).  The
// patterns/sec metric is the aggregate over all shards.
func BenchmarkServiceShardThroughput(b *testing.B) {
	f, err := os.Open(filepath.Join("examples", "iscas", "s953.ckt"))
	if err != nil {
		b.Fatalf("%v (regenerate with `go run ./examples/iscas`)", err)
	}
	c, err := ParseCircuit(f, "s953")
	f.Close()
	if err != nil {
		b.Fatal(err)
	}
	tests := serviceBenchTests(c, 32, 12)
	want := -1
	for _, nw := range []int{1, 2, 4} {
		nw := nw
		b.Run(fmt.Sprintf("s953/workers-%d", nw), func(b *testing.B) {
			var merged *CoverageReport
			for i := 0; i < b.N; i++ {
				reports := make([]*CoverageReport, nw)
				errs := make([]error, nw)
				var wg sync.WaitGroup
				for s := 0; s < nw; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						reports[s], errs[s] = FaultSimBatchShard(c, InputStuckAt, tests, s, nw,
							Options{FaultSimWorkers: 1})
					}(s)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				if merged, err = MergeCoverageShards(reports); err != nil {
					b.Fatal(err)
				}
			}
			if want < 0 {
				want = merged.Detected
			} else if merged.Detected != want {
				b.Fatalf("%d workers detected %d faults, first variant %d", nw, merged.Detected, want)
			}
			b.ReportMetric(float64(merged.Detected), "detected")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(merged.Stats.Patterns)*float64(b.N)/secs, "patterns/sec")
				b.ReportMetric(float64(b.N)/secs, "queries/sec")
			}
		})
	}
}

// BenchmarkServiceConcurrentQueries measures the resident service
// under heavy concurrent load: every iteration launches 1024 in-flight
// identical coverage queries straight into the handler (no sockets),
// the shape the shared trace cache plus singleflight are built for.
// Reported metrics include the trace-cache hit rate over the run — the
// resident-service win the load generator (cmd/satpgload) measures
// over real HTTP.
func BenchmarkServiceConcurrentQueries(b *testing.B) {
	data, err := os.ReadFile(filepath.Join("examples", "iscas", "s27.ckt"))
	if err != nil {
		b.Fatalf("%v (regenerate with `go run ./examples/iscas`)", err)
	}
	c, err := ParseCircuit(strings.NewReader(string(data)), "s27")
	if err != nil {
		b.Fatal(err)
	}
	const inflight, nseq, cycles = 1024, 64, 8
	rng := rand.New(rand.NewSource(29))
	mask := uint64(1)<<uint(c.NumInputs()) - 1
	wire := make([]service.TestJSON, nseq)
	for i := range wire {
		pats := make([]uint64, cycles)
		for t := range pats {
			pats[t] = rng.Uint64() & mask
		}
		wire[i] = service.TestJSON{Patterns: pats}
	}
	body, err := json.Marshal(&service.CoverageRequest{CircuitText: string(data), Tests: wire})
	if err != nil {
		b.Fatal(err)
	}
	for _, nw := range []int{1, 2, 4} {
		nw := nw
		b.Run(fmt.Sprintf("s27/inflight-%d/workers-%d", inflight, nw), func(b *testing.B) {
			srv := service.New(service.Config{Workers: nw})
			before := fsim.TraceCacheStats()
			var patterns, failures int64
			var patMu sync.Mutex
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for q := 0; q < inflight; q++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						req := httptest.NewRequest("POST", "/v1/coverage", bytes.NewReader(body))
						w := httptest.NewRecorder()
						srv.ServeHTTP(w, req)
						var cr service.CoverageResponse
						patMu.Lock()
						defer patMu.Unlock()
						if w.Code != 200 || json.Unmarshal(w.Body.Bytes(), &cr) != nil {
							failures++
							return
						}
						patterns += cr.Patterns
					}()
				}
				wg.Wait()
				if failures > 0 {
					b.Fatalf("%d of %d concurrent queries failed", failures, inflight)
				}
			}
			st := fsim.TraceCacheStats()
			hits, misses := st.Hits-before.Hits, st.Misses-before.Misses
			if hits+misses > 0 {
				b.ReportMetric(100*float64(hits)/float64(hits+misses), "cache-hit-%")
			}
			b.ReportMetric(float64(st.Waits-before.Waits), "singleflight-waits")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*inflight)/secs, "queries/sec")
				b.ReportMetric(float64(patterns)/secs, "patterns/sec")
			}
		})
	}
}
