package satpg

// Benchmark of the deterministic bit-parallel PODEM phase on hard
// faults: the faults a starved random phase leaves undetected.  The
// podem-on/podem-off dimension rides into the BENCH artifact via
// cmd/benchjson, recording what the phase adds and what it costs.
//
// Two rows, one per flow, each showing the phase's distinct payoff:
//
//   - s953 (direct flow): there is no exhaustive fallback past the
//     explicit-state ceiling, so every PODEM detection is coverage the
//     run would otherwise not have — podem-on must cover strictly more
//     than podem-off (covered, podem-found).
//   - hazard (CSSG flow): the exhaustive product-machine fallback is
//     complete, so coverage matches; the payoff is every deterministic
//     detection being one fallback search that never happens
//     (fallback-calls drops on the podem-on row).

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/atpg"
)

func benchPodemCircuit(b *testing.B, name string) *Circuit {
	b.Helper()
	f, err := os.Open(filepath.Join("examples", "iscas", name+".ckt"))
	if err != nil {
		b.Fatalf("%v (regenerate with `go run ./examples/iscas`)", err)
	}
	defer f.Close()
	c, err := ParseCircuit(f, name)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkPodemHardFaults(b *testing.B) {
	// Starve the random phase so a meaningful hard-fault set survives
	// it; the budget is tightened to keep the smoke pass quick.
	directOpts := Options{Seed: 5, RandomSequences: 2, RandomLength: 8, PodemBudget: 16}

	// Direct flow on the largest corpus member: past the explicit-state
	// ceiling, PODEM is the only deterministic phase there is.
	c := benchPodemCircuit(b, "s953")
	base, err := GenerateDirect(c, InputStuckAt, func() Options { o := directOpts; o.SkipPodem = true; return o }())
	if err != nil {
		b.Fatal(err)
	}
	hard := base.Total - base.Covered
	for _, podemOn := range []bool{false, true} {
		b.Run(fmt.Sprintf("s953/podem-%s", onOff(podemOn)), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				o := directOpts
				o.SkipPodem = !podemOn
				var err error
				res, err = GenerateDirect(c, InputStuckAt, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			if podemOn && res.Covered <= base.Covered {
				b.Fatalf("PODEM adds no coverage over random alone: %d vs %d", res.Covered, base.Covered)
			}
			b.ReportMetric(float64(hard), "hard-faults")
			b.ReportMetric(float64(res.Covered), "covered")
			b.ReportMetric(float64(res.ByPhase[atpg.PhasePodem]), "podem-found")
			b.ReportMetric(float64(res.Podem.Decisions), "decisions")
			b.ReportMetric(float64(res.Podem.Backtracks), "backtracks")
		})
	}

	// CSSG flow: PODEM runs between the walks and the exhaustive
	// product-machine fallback, so every deterministic detection is one
	// fallback search that never happens — fallback-calls records it.
	cssgOpts := Options{Seed: 5, RandomSequences: 1, RandomLength: 4}
	hz := mustLoadBenchmark(b, "hf/hazard")
	g, err := Abstract(hz, cssgOpts)
	if err != nil {
		b.Fatal(err)
	}
	fbBase := Generate(g, InputStuckAt, func() Options { o := cssgOpts; o.SkipPodem = true; return o }()).Fallback
	for _, podemOn := range []bool{false, true} {
		b.Run(fmt.Sprintf("hazard/podem-%s", onOff(podemOn)), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				o := cssgOpts
				o.SkipPodem = !podemOn
				res = Generate(g, InputStuckAt, o)
			}
			if podemOn && res.Fallback >= fbBase {
				b.Fatalf("PODEM saves no fallback searches: %d vs %d", res.Fallback, fbBase)
			}
			b.ReportMetric(float64(res.Covered), "covered")
			b.ReportMetric(float64(res.ByPhase[atpg.PhasePodem]), "podem-found")
			b.ReportMetric(float64(res.Fallback), "fallback-calls")
			b.ReportMetric(float64(res.Podem.Decisions), "decisions")
			b.ReportMetric(float64(res.Podem.Backtracks), "backtracks")
		})
	}
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

func mustLoadBenchmark(b *testing.B, ref string) *Circuit {
	b.Helper()
	c, err := LoadBenchmark(ref)
	if err != nil {
		b.Fatal(err)
	}
	return c
}
