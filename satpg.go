// Package satpg generates synchronous test patterns for asynchronous
// circuits, reproducing Roig, Cortadella, Peña & Pastor, "Automatic
// Generation of Synchronous Test Patterns for Asynchronous Circuits"
// (DAC 1997).
//
// The flow has three steps:
//
//  1. Load a gate-level circuit (.ckt text format or a bundled
//     benchmark).  The circuit follows the unbounded inertial
//     gate-delay model; feedback loops are allowed and every primary
//     input is buffered, as in the paper.
//  2. Abstract the circuit into its Confluent Stable State Graph: the
//     deterministic synchronous FSM of all (stable state, input vector)
//     pairs that neither race nor oscillate within the k-transition
//     test cycle.
//  3. Generate stuck-at tests on the CSSG with random TPG, three-phase
//     ATPG and parallel ternary fault simulation, then (optionally)
//     compact the test program over its exact detection matrix
//     (CompactProgram — coverage preserved fault for fault) and
//     validate the vectors on a timed model of the chip under random
//     bounded delay assignments.
//
// Quickstart:
//
//	c, _ := satpg.LoadBenchmark("si/chu150")
//	res, _ := satpg.Run(context.Background(), c, satpg.InputStuckAt, satpg.Options{Seed: 1})
//	fmt.Println(res.Summary())
//
// Run picks the CSSG flow or the size-agnostic direct flow by circuit
// size (Options.Flow overrides), runs random walks, the deterministic
// bit-parallel PODEM phase and — in the CSSG flow — three-phase
// targeting, and honours context cancellation at every batch and
// decision boundary.
package satpg

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/atpg"
	"repro/internal/baseline"
	"repro/internal/circuits"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/dft"
	"repro/internal/faults"
	"repro/internal/fsim"
	"repro/internal/netlist"
	"repro/internal/stg"
	"repro/internal/tester"
)

// Re-exported building blocks.  The concrete types live in internal
// packages; these aliases are the supported public surface.
type (
	// Circuit is a gate-level asynchronous circuit.
	Circuit = netlist.Circuit
	// CSSG is the synchronous abstraction (confluent stable state graph).
	CSSG = core.CSSG
	// Fault is a single stuck-at fault site.
	Fault = faults.Fault
	// FaultModel selects input or output stuck-at faults.
	FaultModel = faults.Type
	// Result is a full ATPG outcome.
	Result = atpg.Result
	// Test is one synchronous test sequence with expected responses.
	Test = atpg.Test
	// Program is a tester-ready stimulus/response program.
	Program = tester.Program
	// Benchmark is a named suite circuit.
	Benchmark = circuits.Benchmark
	// VectorAnalysis classifies one (state, vector) pair.
	VectorAnalysis = core.VectorAnalysis
	// EdgeClass is the classification of a (state, vector) pair.
	EdgeClass = core.EdgeClass
	// BaselineComparison is the §6.1 virtual-flip-flop comparison.
	BaselineComparison = baseline.Comparison
	// STG is a signal transition graph specification (Petrify .g format).
	STG = stg.Net
	// Conformance is the closed-loop circuit-vs-STG verification result.
	Conformance = stg.ConformanceResult
	// TestPoint is a DFT observation or control point.
	TestPoint = dft.Point
	// Hazard is a semi-modularity violation along a valid vector.
	Hazard = core.Hazard
	// SelfCheckReport is the §1 self-checking experiment result.
	SelfCheckReport = stg.SelfCheckReport
	// CoverageReport is a batched bit-parallel coverage measurement.
	CoverageReport = atpg.CoverageReport
	// FaultCoverage is the per-fault verdict of a CoverageReport.
	FaultCoverage = atpg.FaultCoverage
	// ProgramCoverageSummary is the tester-side coverage measurement.
	ProgramCoverageSummary = tester.CoverageSummary
	// FaultSimEngine selects the fault-simulation settling strategy.
	FaultSimEngine = fsim.EngineKind
	// FaultSimStats reports fault-simulation work counters.
	FaultSimStats = fsim.Stats
	// FaultSelection picks which fault universes a flow targets: the
	// stuck-at model alone, the transition universe alone, or both.
	FaultSelection = faults.Selection
	// CompactMode selects the test-program compaction passes.
	CompactMode = compact.Mode
	// CompactionResult is the outcome of one program compaction.
	CompactionResult = compact.Result
	// DetectionMatrix is the exact per-program × per-fault detection
	// matrix a compaction argues against.
	DetectionMatrix = compact.Matrix
)

// MaxExplicitSignals is the signal-count ceiling of the explicit-state
// subsystems (Abstract/Generate, the STG tooling and the timed tester
// model), which pack one state per machine word.  The packed-state
// simulation engines — and the GenerateDirect flow built on them — go
// up to MaxSignals.
const (
	MaxExplicitSignals = netlist.WordBits
	// MaxSignals is the absolute circuit-size ceiling of the multi-word
	// packed-state engines.
	MaxSignals = netlist.MaxSignals
)

// Fault-simulation engines.  EventEngine (the default) re-simulates
// only each fault's fanout cone against the cached good trace;
// SweepEngine settles the whole circuit with full Jacobi sweeps and is
// kept as the differential oracle.  Detected sets are bit-identical.
const (
	EventEngine = fsim.EngineEvent
	SweepEngine = fsim.EngineSweep
)

// Test-point kinds.
const (
	ObservePoint = dft.Observe
	ControlPoint = dft.Control
)

// Fault models.  TransitionFaults selects the gross gate-delay model
// (slow-to-rise / slow-to-fall), the paper's §7 extension direction.
const (
	OutputStuckAt    = faults.OutputSA
	InputStuckAt     = faults.InputSA
	TransitionFaults = faults.Transition
)

// Fault selections (Options.Faults, cmd/satpg -faults): which
// universes the flow targets on top of the chosen stuck-at model.
const (
	SelectStuckAt    = faults.SelStuckAt    // the stuck-at model only (default)
	SelectTransition = faults.SelTransition // the transition universe only
	SelectBoth       = faults.SelBoth       // stuck-at ∪ transition
)

// ParseFaultSelection resolves the CLI keyword ("sa", "transition",
// "both") of a fault selection.
func ParseFaultSelection(s string) (FaultSelection, bool) { return faults.ParseSelection(s) }

// Compaction modes (Options.Compact, cmd/satpg -compact): which passes
// shrink a finished test program over its exact detection matrix.
// Every mode preserves the measured coverage bit-identically, fault
// for fault.
const (
	CompactNone      = compact.ModeNone      // keep every test (default)
	CompactReverse   = compact.ModeReverse   // reverse-order fault-sim drop
	CompactDominance = compact.ModeDominance // dominance-aware pruning
	CompactGreedy    = compact.ModeGreedy    // greedy set-cover reselection
	CompactAll       = compact.ModeAll       // all three, iterated to a fixpoint
)

// ParseCompactMode resolves the CLI keyword ("none", "reverse",
// "dominance", "greedy", "all") of a compaction mode.
func ParseCompactMode(s string) (CompactMode, bool) { return compact.ParseMode(s) }

// Vector classifications (see Analyze).
const (
	VectorValid        = core.Valid
	VectorNonConfluent = core.NonConfluent
	VectorUnsettled    = core.Unsettled
	VectorTruncated    = core.Truncated
)

// Options tunes the whole flow; zero values select documented defaults.
type Options struct {
	// K is the test-cycle length in gate transitions (0: 4·NumSignals).
	K int
	// Seed drives the random-TPG walks (0: 1).
	Seed int64
	// RandomSequences and RandomLength size the random phase
	// (0: 256 walks of 24 vectors); SkipRandom disables it.
	RandomSequences int
	RandomLength    int
	SkipRandom      bool
	// SkipFaultSim disables collateral fault dropping.
	SkipFaultSim bool
	// FaultSimWorkers shards bit-parallel fault simulation across this
	// many goroutines (0: GOMAXPROCS).  It affects the ATPG random
	// phase and the FaultSimBatch / coverage measurements.
	FaultSimWorkers int
	// FaultSimLanes selects the lane width of bit-parallel fault
	// simulation: 64 (default, one word per signal), 128 or 256 test
	// sequences per sweep.  Detected sets are identical across widths;
	// wider lanes amortise each ternary sweep over more patterns.
	FaultSimLanes int
	// FaultSimEngine selects event-driven cone-limited settling
	// (EventEngine, the default) or the full-sweep oracle
	// (SweepEngine).  Detected sets are identical either way.
	FaultSimEngine FaultSimEngine
	// Faults selects which universes Generate, FaultSimBatch and
	// MeasureProgramCoverage target: the chosen stuck-at model
	// (SelectStuckAt, the default), the transition universe
	// (SelectTransition), or their union (SelectBoth).  Transition
	// faults ride the same batched bit-parallel machinery as stuck-at
	// faults, injected as directional override masks.
	Faults FaultSelection
	// Compact selects the test-program compaction passes CompactProgram
	// runs (CompactNone, the default, keeps every test).  Compaction
	// never changes a single per-fault verdict of the measured
	// coverage; it only removes tests whose every detection another
	// kept test carries.
	Compact CompactMode
	// Flow selects the generation flow Run uses: FlowAuto (the default)
	// picks the CSSG flow for circuits within MaxExplicitSignals and
	// the direct flow past it; FlowCSSG and FlowDirect force one.
	Flow Flow
	// SkipPodem disables the deterministic bit-parallel PODEM phase
	// that runs after the random walks in both flows.
	SkipPodem bool
	// PodemBudget caps the decision-tree size per targeted fault
	// (0: 512 decisions); PodemCycles caps the test length a single
	// target may grow to (0: 8 cycles).
	PodemBudget int
	PodemCycles int
}

// Flow selects which generation flow Run uses.
type Flow uint8

// Generation flows.
const (
	// FlowAuto (the default) picks FlowCSSG for circuits within
	// MaxExplicitSignals and FlowDirect past it.
	FlowAuto Flow = iota
	// FlowCSSG abstracts the circuit into its confluent stable state
	// graph and generates on it — the paper's exact flow, limited to
	// MaxExplicitSignals signals.
	FlowCSSG
	// FlowDirect generates on the scalar/packed ternary machines
	// without building a CSSG — valid at any size up to MaxSignals.
	FlowDirect
)

func (f Flow) String() string {
	switch f {
	case FlowAuto:
		return "auto"
	case FlowCSSG:
		return "cssg"
	case FlowDirect:
		return "direct"
	}
	return fmt.Sprintf("Flow(%d)", uint8(f))
}

// Validate reports the first nonsensical option with a descriptive
// error, or nil.  Run calls it; zero values are always valid (they
// select the documented defaults).
func (o Options) Validate() error {
	if o.K < 0 {
		return fmt.Errorf("satpg: K must be ≥ 0, got %d (0 selects the 4·NumSignals default)", o.K)
	}
	if o.RandomSequences < 0 {
		return fmt.Errorf("satpg: RandomSequences must be ≥ 0, got %d", o.RandomSequences)
	}
	if o.RandomLength < 0 {
		return fmt.Errorf("satpg: RandomLength must be ≥ 0, got %d", o.RandomLength)
	}
	if o.FaultSimWorkers < 0 {
		return fmt.Errorf("satpg: FaultSimWorkers must be ≥ 0, got %d (0 selects GOMAXPROCS)", o.FaultSimWorkers)
	}
	switch o.FaultSimLanes {
	case 0, 64, 128, 256:
	default:
		return fmt.Errorf("satpg: FaultSimLanes must be 64, 128 or 256, got %d", o.FaultSimLanes)
	}
	switch o.FaultSimEngine {
	case EventEngine, SweepEngine:
	default:
		return fmt.Errorf("satpg: unknown fault-simulation engine %d (want EventEngine or SweepEngine)", o.FaultSimEngine)
	}
	switch o.Flow {
	case FlowAuto, FlowCSSG, FlowDirect:
	default:
		return fmt.Errorf("satpg: unknown flow %d (want FlowAuto, FlowCSSG or FlowDirect)", uint8(o.Flow))
	}
	if o.PodemBudget < 0 {
		return fmt.Errorf("satpg: PodemBudget must be ≥ 0, got %d (0 selects the default decision budget)", o.PodemBudget)
	}
	if o.PodemCycles < 0 {
		return fmt.Errorf("satpg: PodemCycles must be ≥ 0, got %d (0 selects the default cycle cap)", o.PodemCycles)
	}
	return nil
}

func (o Options) coreOpts() core.Options { return core.Options{K: o.K} }

func (o Options) atpgOpts() atpg.Options {
	return atpg.Options{
		Seed:            o.Seed,
		RandomSequences: o.RandomSequences,
		RandomLength:    o.RandomLength,
		SkipRandom:      o.SkipRandom,
		SkipFaultSim:    o.SkipFaultSim,
		FaultSimWorkers: o.FaultSimWorkers,
		FaultSimLanes:   o.FaultSimLanes,
		FaultSimEngine:  o.FaultSimEngine,
		SkipPodem:       o.SkipPodem,
		PodemBudget:     o.PodemBudget,
		PodemCycles:     o.PodemCycles,
	}
}

// ParseCircuit reads a circuit in .ckt format; name is used in errors.
func ParseCircuit(r io.Reader, name string) (*Circuit, error) {
	return netlist.Parse(r, name)
}

// ParseCircuitString parses an in-memory .ckt description.
func ParseCircuitString(src, name string) (*Circuit, error) {
	return netlist.ParseString(src, name)
}

// LoadBenchmark resolves a bundled benchmark: "si/<name>" (Table 1
// suite), "hf/<name>" (Table 2 suite), "fig1a" or "fig1b".
func LoadBenchmark(ref string) (*Circuit, error) { return circuits.Lookup(ref) }

// SpeedIndependentSuite returns the Table-1 benchmark set in row order.
func SpeedIndependentSuite() []Benchmark { return circuits.SpeedIndependent() }

// HazardFreeSuite returns the Table-2 benchmark set in row order.
func HazardFreeSuite() []Benchmark { return circuits.HazardFree() }

// Abstract builds the CSSG_k of the circuit (§4): the synchronous FSM
// of valid test vectors.
func Abstract(c *Circuit, opts Options) (*CSSG, error) {
	return core.Build(c, opts.coreOpts())
}

// Analyze classifies a single (stable state, input pattern) pair
// exactly: valid, non-confluent, unsettled or truncated.
func Analyze(c *Circuit, stable, pattern uint64, opts Options) VectorAnalysis {
	return core.AnalyzeVector(c, stable, pattern, opts.coreOpts())
}

// Universe returns the fault list of the model for the circuit.
func Universe(c *Circuit, model FaultModel) []Fault {
	return faults.Universe(c, model)
}

// SelectedUniverse returns the fault list a selection targets: the
// stuck-at universe of the model, the transition universe, or their
// concatenation (stuck-at first).
func SelectedUniverse(c *Circuit, model FaultModel, sel FaultSelection) []Fault {
	return faults.SelectUniverse(c, model, sel)
}

// Run is the single ATPG entrypoint: it validates opts, selects the
// generation flow (Options.Flow; FlowAuto picks the CSSG flow within
// MaxExplicitSignals and the direct flow past it) and generates tests
// for the universe Options.Faults selects — random walks, then the
// deterministic bit-parallel PODEM phase, then (CSSG flow only)
// three-phase targeting of the leftovers.
//
// The context cancels cooperatively at every batch and decision
// boundary: on cancellation Run returns the partial Result accumulated
// so far together with ctx.Err(), and every test and verdict in that
// partial Result is as valid as a completed run's.  In the CSSG flow
// the built abstraction is returned via Result.Graph, so callers
// needing it (Programs, ValidateOnTester, the table tooling) don't
// abstract twice.
func Run(ctx context.Context, c *Circuit, model FaultModel, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	flow := opts.Flow
	if flow == FlowAuto {
		if c.NumSignals() <= MaxExplicitSignals {
			flow = FlowCSSG
		} else {
			flow = FlowDirect
		}
	}
	universe := faults.SelectUniverse(c, model, opts.Faults)
	if flow == FlowDirect {
		return atpg.RunDirectCtx(ctx, c, model, universe, opts.atpgOpts())
	}
	if c.NumSignals() > MaxExplicitSignals {
		return nil, fmt.Errorf("satpg: %s has %d signals, past the %d-signal ceiling of the CSSG flow (use FlowDirect or FlowAuto)",
			c.Name, c.NumSignals(), MaxExplicitSignals)
	}
	g, err := Abstract(c, opts)
	if err != nil {
		return nil, err
	}
	return atpg.RunUniverseCtx(ctx, g, model, universe, opts.atpgOpts())
}

// Generate runs the CSSG-flow ATPG (§5) on a prebuilt CSSG over the
// universe Options.Faults selects (the model's stuck-at faults by
// default; SelectTransition or SelectBoth widen it to the gross
// gate-delay extension).
//
// Deprecated: Use Run (or GenerateCtx when the CSSG is prebuilt) —
// they validate options and support cancellation.  Generate is kept
// as a thin wrapper and never returns partial results.
func Generate(g *CSSG, model FaultModel, opts Options) *Result {
	res, _ := GenerateCtx(context.Background(), g, model, opts)
	return res
}

// GenerateCtx is the context-aware CSSG-flow generation over a
// prebuilt abstraction: cancellation is checked at every batch and
// decision boundary, and a cancelled run returns the partial Result
// alongside ctx.Err().
func GenerateCtx(ctx context.Context, g *CSSG, model FaultModel, opts Options) (*Result, error) {
	return atpg.RunUniverseCtx(ctx, g, model, faults.SelectUniverse(g.C, model, opts.Faults), opts.atpgOpts())
}

// GenerateForCircuit is the one-shot convenience: Abstract then
// Generate.
//
// Deprecated: Use Run with Options.Flow = FlowCSSG (or FlowAuto); the
// built abstraction is returned via Result.Graph.
func GenerateForCircuit(c *Circuit, model FaultModel, opts Options) (*CSSG, *Result, error) {
	g, err := Abstract(c, opts)
	if err != nil {
		return nil, nil, err
	}
	return g, Generate(g, model, opts), nil
}

// VerifyTestDirect replays a test against one fault on the scalar
// ternary machine; true means detection is guaranteed for every delay
// assignment.  It is the size-agnostic counterpart of VerifyTest and
// the per-fault oracle of the multi-word engine parity suites.
func VerifyTestDirect(c *Circuit, f Fault, t Test) bool {
	return atpg.VerifyDirect(c, f, t)
}

// GenerateDirect runs the CSSG-free ATPG flow: valid random walks are
// drawn directly on the scalar ternary machine (a vector is accepted
// only when the settling is fully definite, §5.4's validity criterion)
// and screened with the batched multi-word fault simulator.  It is the
// only generation path for circuits past the 64-signal ceiling of the
// explicit-state abstraction, and works at any size.
//
// Deprecated: Use Run with Options.Flow = FlowDirect (or FlowAuto) —
// it validates options and supports cancellation.
func GenerateDirect(c *Circuit, model FaultModel, opts Options) (*Result, error) {
	return GenerateDirectCtx(context.Background(), c, model, opts)
}

// GenerateDirectCtx is the context-aware direct-flow generation:
// cancellation is checked at every batch and decision boundary, and a
// cancelled run returns the partial Result alongside ctx.Err().
func GenerateDirectCtx(ctx context.Context, c *Circuit, model FaultModel, opts Options) (*Result, error) {
	return atpg.RunDirectCtx(ctx, c, model, faults.SelectUniverse(c, model, opts.Faults), opts.atpgOpts())
}

// VerifyTest replays a test against one fault with the exact
// set-semantics machine; true means detection is guaranteed for every
// delay assignment.
func VerifyTest(g *CSSG, f Fault, t Test) bool {
	return atpg.Verify(g, f, t, atpg.Options{})
}

// FaultSimBatch measures the guaranteed coverage of a test set over
// the universe Options.Faults selects (the model's stuck-at faults,
// the transition universe, or both) with the bit-parallel fault
// simulator:
// tests ride the lanes of each batch (Options.FaultSimLanes patterns
// per sweep), only one representative per structural fault-equivalence
// class is simulated (verdicts fan out to the whole universe), the
// class list is sharded across Options.FaultSimWorkers goroutines, and
// faults are dropped from later batches once detected.
func FaultSimBatch(c *Circuit, model FaultModel, tests []Test, opts Options) (*CoverageReport, error) {
	return FaultSimBatchCtx(context.Background(), c, model, tests, opts)
}

// FaultSimBatchCtx is FaultSimBatch with cooperative cancellation,
// checked between lane-width batches; a cancelled measurement returns
// ctx.Err() and no report (a partial coverage number undercounts
// silently).
func FaultSimBatchCtx(ctx context.Context, c *Circuit, model FaultModel, tests []Test, opts Options) (*CoverageReport, error) {
	return atpg.CoverageOfCtx(ctx, c, faults.SelectUniverse(c, model, opts.Faults), tests, atpg.CoverageOptions{
		Workers: opts.FaultSimWorkers, Lanes: opts.FaultSimLanes, Engine: opts.FaultSimEngine,
	})
}

// FaultSimBatchShard is FaultSimBatch restricted to shard `shard` of a
// `shards`-way partition of the representative fault classes — the
// per-worker measurement of the distributed coverage flow.  The report
// carries its ownership mask; the reports of all `shards` shards (over
// the same circuit, model, tests and options) merge losslessly with
// MergeCoverageShards into a report whose per-fault verdicts are
// bit-identical to the unsharded FaultSimBatch.
func FaultSimBatchShard(c *Circuit, model FaultModel, tests []Test, shard, shards int, opts Options) (*CoverageReport, error) {
	return atpg.CoverageOfOpts(c, faults.SelectUniverse(c, model, opts.Faults), tests, atpg.CoverageOptions{
		Workers: opts.FaultSimWorkers, Lanes: opts.FaultSimLanes, Engine: opts.FaultSimEngine,
		Shard: shard, Shards: shards,
	})
}

// MergeCoverageShards folds the shard reports of a distributed
// measurement (FaultSimBatchShard over every shard index) into the
// single-process report: each fault's verdict is taken from the shard
// that owns it, and counters sum.
func MergeCoverageShards(reports []*CoverageReport) (*CoverageReport, error) {
	return atpg.MergeShardReports(reports)
}

// MeasureProgramCoverage is FaultSimBatch for tester programs: the
// stimulus/response view of the same measurement.
func MeasureProgramCoverage(c *Circuit, progs []Program, model FaultModel, opts Options) (ProgramCoverageSummary, error) {
	return tester.MeasureCoverage(c, progs, faults.SelectUniverse(c, model, opts.Faults), opts.FaultSimWorkers, opts.FaultSimLanes, opts.FaultSimEngine)
}

// CompactProgram shrinks a tester program set over the universe
// Options.Faults selects, running the passes Options.Compact names on
// the exact detection matrix (one batched fsim pass; lane width,
// engine and worker options apply to it).  The compacted program's
// measured coverage is bit-identical to the original's, per fault —
// only tests whose every detection another kept test carries are
// dropped.
func CompactProgram(c *Circuit, progs []Program, model FaultModel, opts Options) (*CompactionResult, error) {
	return CompactProgramCtx(context.Background(), c, progs, model, opts)
}

// CompactProgramCtx is CompactProgram with cooperative cancellation:
// the context gates the detection-matrix pass (the expensive part),
// checked between lane-width batches; a cancelled run returns
// ctx.Err() and no result.
func CompactProgramCtx(ctx context.Context, c *Circuit, progs []Program, model FaultModel, opts Options) (*CompactionResult, error) {
	return compact.CompactCtx(ctx, c, progs, faults.SelectUniverse(c, model, opts.Faults), opts.Compact,
		compact.Options{Workers: opts.FaultSimWorkers, Lanes: opts.FaultSimLanes, Engine: opts.FaultSimEngine})
}

// Programs converts the result's tests into tester programs (stimulus
// plus expected responses, including the reset observation).
func Programs(g *CSSG, r *Result) []Program {
	out := make([]Program, len(r.Tests))
	for i, t := range r.Tests {
		out[i] = Program{
			Patterns:      t.Patterns,
			Expected:      t.Expected,
			ResetExpected: g.OutputsOf(g.Init),
		}
	}
	return out
}

// ProgramsForCircuit converts a direct-flow result's tests into tester
// programs; the reset observation is read off the settled reset state
// of the scalar good machine instead of a CSSG.
func ProgramsForCircuit(c *Circuit, r *Result) []Program {
	reset := atpg.ResetOutputs(c)
	out := make([]Program, len(r.Tests))
	for i, t := range r.Tests {
		out[i] = Program{
			Patterns:      t.Patterns,
			Expected:      t.Expected,
			ResetExpected: reset,
		}
	}
	return out
}

// FormatProgram renders a program as tester stimulus text.
func FormatProgram(c *Circuit, p Program) string { return tester.Format(c, p) }

// ValidateOnTester Monte-Carlo-validates the result on the timed chip
// model: the good circuit must match every program under `trials`
// random delay assignments, and every detected fault's program must
// mismatch on the corresponding faulty chip in every trial.  It returns
// an error describing the first violation, or nil.
func ValidateOnTester(g *CSSG, r *Result, trials int, seed int64) error {
	cycle := tester.CycleFor(g.Stats.MaxSettleDepth, 1.5)
	progs := Programs(g, r)
	for i, p := range progs {
		if _, mism := tester.MonteCarlo(g.C, p, trials, seed+int64(i), cycle); mism != 0 {
			return fmt.Errorf("satpg: good circuit mismatched program %d under %d delay assignments", i, mism)
		}
	}
	for fi, fr := range r.PerFault {
		if !fr.Detected {
			continue
		}
		fc := faults.Apply(g.C, fr.Fault)
		// Salt per fault, offset past the good-circuit loop's salts
		// (seed+i for i < len(progs)): an unsalted seed would reuse one
		// delay-assignment sample across every fault, so a systematic
		// blind spot of that single sample could pass validation.
		_, mism := tester.MonteCarlo(fc, progs[fr.TestIndex], trials, seed+int64(len(progs))+int64(fi), cycle)
		if mism != trials {
			return fmt.Errorf("satpg: fault %s evaded detection in %d/%d delay assignments",
				fr.Fault.Describe(g.C), trials-mism, trials)
		}
	}
	return nil
}

// ValidateDirect replays a direct-flow result against the scalar
// ternary oracle: every kept test must settle fully definite on the
// good machine with outputs bit-equal to its expected responses, and
// every detected fault's test must produce a definite output opposite
// the expected bit on the corresponding faulty machine.  This is the
// size-agnostic counterpart of ValidateOnTester — it checks that the
// packed multi-word engines' results are bit-identical to the scalar
// machine, fault for fault.
func ValidateDirect(c *Circuit, r *Result) error {
	for i, t := range r.Tests {
		if !atpg.VerifyDirectGood(c, t) {
			return fmt.Errorf("satpg: good circuit diverged from the scalar oracle on test %d", i)
		}
	}
	for _, fr := range r.PerFault {
		if !fr.Detected {
			continue
		}
		if !atpg.VerifyDirect(c, fr.Fault, r.Tests[fr.TestIndex]) {
			return fmt.Errorf("satpg: fault %s not confirmed by the scalar oracle on test %d",
				fr.Fault.Describe(c), fr.TestIndex)
		}
	}
	return nil
}

// CompareBaseline runs the §6.1 comparison: Banerjee-style virtual-FF
// synchronous ATPG followed by validation on the asynchronous circuit.
func CompareBaseline(g *CSSG, model FaultModel) BaselineComparison {
	return baseline.Compare(g, model, 200000)
}

// ParseSTG reads a specification in Petrify/SIS .g format.
func ParseSTG(r io.Reader, name string) (*STG, error) { return stg.Parse(r, name) }

// ParseSTGString parses an in-memory .g description.
func ParseSTGString(src, name string) (*STG, error) { return stg.ParseString(src, name) }

// Conform closes the circuit with the STG as its environment and checks
// that every output edge the circuit can produce is allowed by the
// specification and that expected outputs are eventually produced.
func Conform(c *Circuit, spec *STG) (Conformance, error) {
	return stg.Conform(c, spec, 0)
}

// InsertTestPoints returns a copy of the circuit instrumented with the
// given observation/control points (§6's testability aids).
func InsertTestPoints(c *Circuit, points []TestPoint) (*Circuit, error) {
	return dft.Insert(c, points)
}

// SelfCheck runs the §1 self-checking experiment: for every output
// stuck-at fault, does normal operation under the STG environment halt
// the circuit (deadlock or unspecified edge)?
func SelfCheck(c *Circuit, spec *STG) (SelfCheckReport, error) {
	return stg.SelfCheckAll(c, spec, 0)
}

// TableRow formats one benchmark row in the layout of the paper's
// Tables 1 and 2: output-SA totals/covered, input-SA totals/covered,
// and the rnd/3-ph/sim split of the input-SA run.
func TableRow(name string, out, in *Result) string {
	return fmt.Sprintf("%-16s %5d %5d   %5d %5d   %4d %5d %4d %5d %9s",
		name, out.Total, out.Covered, in.Total, in.Covered,
		in.ByPhase[atpg.PhaseRandom], in.ByPhase[atpg.PhaseThree], in.ByPhase[atpg.PhaseSim],
		in.Untestable, in.CPU.Round(time.Millisecond).String())
}

// TableHeader returns the column header matching TableRow.
func TableHeader() string {
	return fmt.Sprintf("%-16s %5s %5s   %5s %5s   %4s %5s %4s %5s %9s",
		"example", "o-tot", "o-cov", "i-tot", "i-cov", "rnd", "3-ph", "sim", "unt", "cpu")
}
