package satpg

import (
	"strings"
	"testing"
)

const tinySrc = `
circuit tiny
input a
output z
gate z NOT a
init a=0 z=1
`

func TestFacadeEndToEnd(t *testing.T) {
	c, err := ParseCircuitString(tinySrc, "tiny.ckt")
	if err != nil {
		t.Fatal(err)
	}
	g, res, err := GenerateForCircuit(c, OutputStuckAt, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Fatalf("inverter must be fully testable: %s", res.Summary())
	}
	for _, fr := range res.PerFault {
		if fr.Detected && fr.TestIndex >= 0 {
			if !VerifyTest(g, fr.Fault, res.Tests[fr.TestIndex]) {
				t.Fatalf("VerifyTest rejected the covering test of %s", fr.Fault.Describe(c))
			}
		}
	}
	if err := ValidateOnTester(g, res, 5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeParse(t *testing.T) {
	if _, err := ParseCircuit(strings.NewReader(tinySrc), "tiny.ckt"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseCircuitString("garbage", "g.ckt"); err == nil {
		t.Fatal("garbage must not parse")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if len(SpeedIndependentSuite()) != 24 {
		t.Error("Table-1 suite must have 24 rows")
	}
	if len(HazardFreeSuite()) != 11 {
		t.Error("Table-2 suite must have 11 rows")
	}
	if _, err := LoadBenchmark("si/chu150"); err != nil {
		t.Error(err)
	}
	if _, err := LoadBenchmark("nope"); err == nil {
		t.Error("unknown benchmark must fail")
	}
}

func TestFacadeAnalyze(t *testing.T) {
	c, err := LoadBenchmark("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(c, c.InitState(), 0b11, Options{})
	if an.Class != VectorNonConfluent {
		t.Fatalf("fig1a AB=11 should be non-confluent, got %s", an.Class)
	}
	an = Analyze(c, c.InitState(), 0b00, Options{})
	if an.Class != VectorValid {
		t.Fatalf("fig1a AB=00 should be valid, got %s", an.Class)
	}
}

func TestFacadeUniverse(t *testing.T) {
	c, err := ParseCircuitString(tinySrc, "tiny.ckt")
	if err != nil {
		t.Fatal(err)
	}
	if len(Universe(c, OutputStuckAt)) != 4 { // 2 gates (buffer + NOT) × 2
		t.Errorf("output universe: %d", len(Universe(c, OutputStuckAt)))
	}
	if len(Universe(c, InputStuckAt)) != 4 { // 2 pins × 2
		t.Errorf("input universe: %d", len(Universe(c, InputStuckAt)))
	}
}

func TestTableFormatting(t *testing.T) {
	c, err := ParseCircuitString(tinySrc, "tiny.ckt")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Abstract(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Generate(g, OutputStuckAt, Options{Seed: 1})
	in := Generate(g, InputStuckAt, Options{Seed: 1})
	header := TableHeader()
	row := TableRow("tiny", out, in)
	if len(header) == 0 || len(row) == 0 {
		t.Fatal("empty table strings")
	}
	if !strings.Contains(row, "tiny") {
		t.Errorf("row missing name: %q", row)
	}
}

func TestFacadeProgramsAndFormat(t *testing.T) {
	c, err := LoadBenchmark("si/vbe5b")
	if err != nil {
		t.Fatal(err)
	}
	g, res, err := GenerateForCircuit(c, InputStuckAt, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	progs := Programs(g, res)
	if len(progs) != len(res.Tests) {
		t.Fatal("program count mismatch")
	}
	if len(progs) > 0 {
		text := FormatProgram(c, progs[0])
		if !strings.Contains(text, "circuit vbe5b") {
			t.Errorf("program text: %q", text)
		}
	}
}

func TestFacadeFaultSimBatch(t *testing.T) {
	c, err := LoadBenchmark("si/vbe5b")
	if err != nil {
		t.Fatal(err)
	}
	g, res, err := GenerateForCircuit(c, InputStuckAt, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FaultSimBatch(c, InputStuckAt, res.Tests, Options{FaultSimWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != len(Universe(c, InputStuckAt)) {
		t.Fatalf("universe size mismatch: %d", rep.Total)
	}
	// The bit-parallel re-measurement replays the generated tests under
	// the conservative ternary semantics; every detection it claims must
	// hold up on the exact machine too.
	for _, fc := range rep.PerFault {
		if fc.Detected && fc.TestIndex >= 0 {
			if !VerifyTest(g, fc.Fault, res.Tests[fc.TestIndex]) {
				t.Errorf("fsim detection of %s not confirmed exactly", fc.Fault.Describe(c))
			}
		}
	}
	if !strings.Contains(rep.Summary(), "fsim") {
		t.Errorf("summary: %q", rep.Summary())
	}

	sum, err := MeasureProgramCoverage(c, Programs(g, res), InputStuckAt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != rep.Total {
		t.Fatalf("program-side universe mismatch: %d vs %d", sum.Total, rep.Total)
	}
	// Programs carry the same patterns/responses as the tests, so the
	// two measurements must agree fault-for-fault.
	for fi := range sum.PerFault {
		if sum.PerFault[fi] != rep.PerFault[fi].Detected {
			t.Errorf("fault %d: program coverage %v != test coverage %v",
				fi, sum.PerFault[fi], rep.PerFault[fi].Detected)
		}
	}
}

// TestFaultSimLaneWidthsAgreeOnSuite pins the multi-word lane engine to
// the stacked 64-lane runs on the Table-1 benchmarks: for both fault
// models, the per-fault verdicts of FaultSimBatch must be identical at
// 64, 128 and 256 lanes, and the full ATPG flow must produce the same
// result whichever width the random phase batches its walks at.
func TestFaultSimLaneWidthsAgreeOnSuite(t *testing.T) {
	suite := SpeedIndependentSuite()
	if testing.Short() {
		suite = suite[:3]
	}
	for _, bm := range suite {
		g, res, err := GenerateForCircuit(bm.Circuit, InputStuckAt, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		for _, model := range []FaultModel{OutputStuckAt, InputStuckAt} {
			base, err := FaultSimBatch(bm.Circuit, model, res.Tests, Options{FaultSimLanes: 64})
			if err != nil {
				t.Fatalf("%s: %v", bm.Name, err)
			}
			for _, lanes := range []int{128, 256} {
				rep, err := FaultSimBatch(bm.Circuit, model, res.Tests, Options{FaultSimLanes: lanes})
				if err != nil {
					t.Fatalf("%s lanes=%d: %v", bm.Name, lanes, err)
				}
				for fi := range rep.PerFault {
					if rep.PerFault[fi].Detected != base.PerFault[fi].Detected {
						t.Errorf("%s %v lanes=%d: fault %s detected=%v, 64-lane says %v",
							bm.Name, model, lanes, rep.PerFault[fi].Fault.Describe(bm.Circuit),
							rep.PerFault[fi].Detected, base.PerFault[fi].Detected)
					}
				}
			}
		}
		// The random phase batches its walks by lane width; the walks,
		// their order, and the exact-machine confirmation are width
		// independent, so the whole ATPG result must be too.
		wide := Generate(g, InputStuckAt, Options{Seed: 1, FaultSimLanes: 256})
		if wide.Covered != res.Covered || wide.Untestable != res.Untestable ||
			len(wide.Tests) != len(res.Tests) {
			t.Fatalf("%s: 256-lane ATPG diverged: cov %d vs %d, tests %d vs %d",
				bm.Name, wide.Covered, res.Covered, len(wide.Tests), len(res.Tests))
		}
		for p, n := range res.ByPhase {
			if wide.ByPhase[p] != n {
				t.Errorf("%s: phase %v count %d vs %d", bm.Name, p, wide.ByPhase[p], n)
			}
		}
		for i := range res.PerFault {
			if wide.PerFault[i].Detected != res.PerFault[i].Detected ||
				wide.PerFault[i].Phase != res.PerFault[i].Phase ||
				wide.PerFault[i].TestIndex != res.PerFault[i].TestIndex {
				t.Errorf("%s: fault %d verdict diverged across lane widths", bm.Name, i)
			}
		}
	}
}

func TestFacadeSelfCheck(t *testing.T) {
	spec, err := ParseSTGString(`
.model celem
.inputs a b
.outputs z
.graph
a+ z+
b+ z+
z+ a- b-
a- z-
b- z-
z- a+ b+
.marking { <z-,a+> <z-,b+> }
.end
`, "celem.g")
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseCircuitString(`
circuit celem
input a b
output z
gate z C a b
init a=0 b=0 z=0
`, "celem.ckt")
	if err != nil {
		t.Fatal(err)
	}
	conf, err := Conform(c, spec)
	if err != nil || !conf.OK {
		t.Fatalf("conformance: %v %v", err, conf)
	}
	rep, err := SelfCheck(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Halting != rep.Total || len(rep.Escaping) != 0 {
		t.Fatalf("C element must be self-checking: %+v", rep)
	}
}

func TestFacadeBaseline(t *testing.T) {
	c, err := LoadBenchmark("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Abstract(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cmp := CompareBaseline(g, OutputStuckAt)
	if cmp.SyncCovered == 0 || cmp.Optimism() <= 0 {
		t.Fatalf("baseline comparison degenerate: %+v", cmp)
	}
}

// TestFacadeFaultSelections drives the Options.Faults plumbing end to
// end: the combined universe must be the stuck-at list followed by the
// transition list, the full ATPG flow must cover it with exactly
// verified tests, and the batched coverage measurement must agree
// fault for fault across both engines at every lane width.
func TestFacadeFaultSelections(t *testing.T) {
	c, err := LoadBenchmark("si/vbe5b")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Abstract(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	saN := len(Universe(c, InputStuckAt))
	trN := len(SelectedUniverse(c, InputStuckAt, SelectTransition))
	both := SelectedUniverse(c, InputStuckAt, SelectBoth)
	if len(both) != saN+trN {
		t.Fatalf("combined universe %d faults, want %d", len(both), saN+trN)
	}

	res := Generate(g, InputStuckAt, Options{Seed: 1, Faults: SelectBoth})
	if res.Total != len(both) {
		t.Fatalf("ATPG total %d, want %d", res.Total, len(both))
	}
	for i, fr := range res.PerFault {
		if fr.Fault != both[i] {
			t.Fatalf("fault %d reordered", i)
		}
		if fr.Detected && !VerifyTest(g, fr.Fault, res.Tests[fr.TestIndex]) {
			t.Fatalf("test for %s fails exact verification", fr.Fault.Describe(c))
		}
	}
	if res.Coverage() < 0.9 {
		t.Fatalf("combined coverage suspiciously low: %s", res.Summary())
	}

	for _, lanes := range []int{64, 128, 256} {
		ev, err := FaultSimBatch(c, InputStuckAt, res.Tests,
			Options{Faults: SelectBoth, FaultSimLanes: lanes, FaultSimEngine: EventEngine})
		if err != nil {
			t.Fatal(err)
		}
		sw, err := FaultSimBatch(c, InputStuckAt, res.Tests,
			Options{Faults: SelectBoth, FaultSimLanes: lanes, FaultSimEngine: SweepEngine})
		if err != nil {
			t.Fatal(err)
		}
		for fi := range ev.PerFault {
			e, s := ev.PerFault[fi], sw.PerFault[fi]
			if e.Detected != s.Detected || e.TestIndex != s.TestIndex || e.Cycle != s.Cycle {
				t.Fatalf("lanes=%d fault %s: event {det=%v test=%d cyc=%d} sweep {det=%v test=%d cyc=%d}",
					lanes, e.Fault.Describe(c), e.Detected, e.TestIndex, e.Cycle,
					s.Detected, s.TestIndex, s.Cycle)
			}
		}
	}

	// Program-side measurement accepts the combined universe too.
	sum, err := MeasureProgramCoverage(c, Programs(g, res), InputStuckAt, Options{Faults: SelectBoth})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != len(both) {
		t.Fatalf("program coverage total %d, want %d", sum.Total, len(both))
	}
}
