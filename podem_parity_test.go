package satpg

// Parity and cancellation suite of the deterministic PODEM phase and
// the context-aware Run facade.
//
// The phase's contract is strictly additive: it runs after the random
// walks, so switching it on must never change the verdict of a fault
// the random phase already detected — same Detected, same Phase, same
// TestIndex (podem tests are appended after every random test, so
// random test indices are stable).  The suite pins that across random
// circuits and the ISCAS corpus, for stuck-at, transition and combined
// universes, in both flows.

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/atpg"
	"repro/internal/randckt"
)

func loadISCASCircuit(t *testing.T, name string) *Circuit {
	t.Helper()
	f, err := os.Open(filepath.Join("examples", "iscas", name+".ckt"))
	if err != nil {
		t.Skipf("corpus circuit %s unavailable: %v", name, err)
	}
	defer f.Close()
	c, err := ParseCircuit(f, name)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return c
}

func randomCircuit(t *testing.T, seed int64) *Circuit {
	t.Helper()
	for ; seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if c, ok := randckt.New(rng, randckt.Config{MinInputs: 3, MaxInputs: 4, MinGates: 10, MaxGates: 16}); ok {
			return c
		}
	}
	t.Fatal("no stable random circuit found")
	return nil
}

// randomTestIndices collects the test indices the random phase
// produced in a result: the TestIndex of every PhaseRandom verdict.
// Collateral (PhaseSim) detections of random tests share those
// indices; later phases' tests have indices outside the set.
func randomTestIndices(res *Result) map[int]bool {
	tis := make(map[int]bool)
	for _, fr := range res.PerFault {
		if fr.Detected && fr.Phase == atpg.PhaseRandom {
			tis[fr.TestIndex] = true
		}
	}
	return tis
}

// assertRandomVerdictsPreserved checks the additive contract: every
// fault the random-only run detected via a random test (directly or as
// fault-sim collateral) carries the identical verdict in the
// random+PODEM run, and the PODEM run never covers less.
func assertRandomVerdictsPreserved(t *testing.T, label string, off, on *Result) {
	t.Helper()
	if off.Total != on.Total {
		t.Fatalf("%s: universes differ: %d vs %d faults", label, off.Total, on.Total)
	}
	randomTIs := randomTestIndices(off)
	checked := 0
	for fi, offFR := range off.PerFault {
		if !offFR.Detected || !randomTIs[offFR.TestIndex] {
			continue
		}
		checked++
		onFR := on.PerFault[fi]
		if !onFR.Detected {
			t.Errorf("%s: fault %d detected by the random phase but undetected with PODEM on", label, fi)
			continue
		}
		if onFR.Phase != offFR.Phase || onFR.TestIndex != offFR.TestIndex {
			t.Errorf("%s: fault %d verdict changed: phase %s test %d -> phase %s test %d",
				label, fi, offFR.Phase, offFR.TestIndex, onFR.Phase, onFR.TestIndex)
		}
	}
	if on.Covered < off.Covered {
		t.Errorf("%s: PODEM run covers less: %d vs %d", label, on.Covered, off.Covered)
	}
	if checked == 0 && off.Covered > 0 {
		t.Logf("%s: random phase detected nothing to compare", label)
	}
	// Every random test is shared; the PODEM run may only append.
	for ti := range randomTIs {
		if ti >= len(on.Tests) {
			t.Fatalf("%s: random test %d missing from the PODEM run (%d tests)", label, ti, len(on.Tests))
		}
		offT, onT := off.Tests[ti], on.Tests[ti]
		if len(offT.Patterns) != len(onT.Patterns) {
			t.Fatalf("%s: random test %d differs between runs", label, ti)
		}
		for cyc := range offT.Patterns {
			if offT.Patterns[cyc] != onT.Patterns[cyc] || offT.Expected[cyc] != onT.Expected[cyc] {
				t.Fatalf("%s: random test %d cycle %d differs between runs", label, ti, cyc)
			}
		}
	}
}

func paritySelections() []FaultSelection {
	return []FaultSelection{SelectStuckAt, SelectTransition, SelectBoth}
}

// A starved random phase leaves leftovers for PODEM; the parity
// contract must hold regardless of how much PODEM then adds.  The
// decision budget is tightened to keep the suite's wall time sane on
// the bigger corpus members — the contract is budget-independent.
func parityOptions(sel FaultSelection) Options {
	return Options{Seed: 3, RandomSequences: 8, RandomLength: 8, Faults: sel, PodemBudget: 96}
}

func TestPodemParityCSSGFlow(t *testing.T) {
	circuits := []*Circuit{
		mustBenchmark(t, "fig1a"),
		mustBenchmark(t, "si/chu150"),
		randomCircuit(t, 1),
	}
	if !testing.Short() {
		circuits = append(circuits, loadISCASCircuit(t, "s27"))
	}
	for _, c := range circuits {
		g, err := Abstract(c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for _, sel := range paritySelections() {
			opts := parityOptions(sel)
			offOpts := opts
			offOpts.SkipPodem = true
			off, err := GenerateCtx(context.Background(), g, InputStuckAt, offOpts)
			if err != nil {
				t.Fatalf("%s sel=%v off: %v", c.Name, sel, err)
			}
			on, err := GenerateCtx(context.Background(), g, InputStuckAt, opts)
			if err != nil {
				t.Fatalf("%s sel=%v on: %v", c.Name, sel, err)
			}
			assertRandomVerdictsPreserved(t, c.Name+"/cssg", off, on)
		}
	}
}

func TestPodemParityDirectFlow(t *testing.T) {
	circuits := []*Circuit{
		mustBenchmark(t, "fig1a"),
		mustBenchmark(t, "si/master-read"),
		randomCircuit(t, 2),
	}
	if !testing.Short() {
		circuits = append(circuits, loadISCASCircuit(t, "s27"), loadISCASCircuit(t, "s953"))
	}
	for _, c := range circuits {
		for _, sel := range paritySelections() {
			// The largest corpus member runs the stuck-at universe only:
			// the transition/both dimensions are exercised on the smaller
			// circuits, and tripling s953's PODEM targets buys no new
			// coverage of the contract.
			if c.NumSignals() > MaxExplicitSignals && sel != SelectStuckAt {
				continue
			}
			opts := parityOptions(sel)
			offOpts := opts
			offOpts.SkipPodem = true
			off, err := GenerateDirectCtx(context.Background(), c, InputStuckAt, offOpts)
			if err != nil {
				t.Fatalf("%s sel=%v off: %v", c.Name, sel, err)
			}
			on, err := GenerateDirectCtx(context.Background(), c, InputStuckAt, opts)
			if err != nil {
				t.Fatalf("%s sel=%v on: %v", c.Name, sel, err)
			}
			assertRandomVerdictsPreserved(t, c.Name+"/direct", off, on)
		}
	}
}

func mustBenchmark(t *testing.T, ref string) *Circuit {
	t.Helper()
	c, err := LoadBenchmark(ref)
	if err != nil {
		t.Fatalf("benchmark %s: %v", ref, err)
	}
	return c
}

// A pre-cancelled context returns within one batch/decision boundary
// with a structurally valid partial result in both flows.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, flow := range []Flow{FlowCSSG, FlowDirect} {
		c := mustBenchmark(t, "si/chu150")
		res, err := Run(ctx, c, InputStuckAt, Options{Flow: flow, Faults: SelectBoth})
		if err == nil {
			t.Fatalf("flow=%s: cancelled Run returned no error", flow)
		}
		if res == nil {
			t.Fatalf("flow=%s: cancelled Run returned no partial result", flow)
		}
		if res.Total == 0 {
			t.Fatalf("flow=%s: partial result lost the universe", flow)
		}
		for fi, fr := range res.PerFault {
			if fr.Detected && (fr.TestIndex < 0 || fr.TestIndex >= len(res.Tests)) {
				t.Fatalf("flow=%s: fault %d claims out-of-range test %d", flow, fi, fr.TestIndex)
			}
		}
	}
}

// Cancelling mid-run returns promptly and leaks no goroutines: the
// direct flow's walk-generation workers and the fault-sim shards must
// all drain.
func TestRunCancellationStopsPromptly(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	c := loadISCASCircuit(t, "s953")
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		defer close(done)
		// A deliberately huge workload: only cancellation ends it early.
		res, runErr = Run(ctx, c, InputStuckAt, Options{
			Flow: FlowDirect, Faults: SelectBoth,
			RandomSequences: 1 << 16, RandomLength: 48,
		})
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled Run did not return within 30s")
	}
	if runErr == nil {
		t.Fatal("cancelled Run reported success on a workload sized to outlive the test")
	}
	if res == nil || res.Total == 0 {
		t.Fatal("cancelled Run returned no partial result")
	}
	// Goroutines wind down asynchronously after the flow returns; allow
	// a grace period before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutine leak after cancellation: %d before, %d after", before, runtime.NumGoroutine())
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"negative workers", Options{FaultSimWorkers: -1}},
		{"bad lane width", Options{FaultSimLanes: 96}},
		{"unknown engine", Options{FaultSimEngine: 7}},
		{"unknown flow", Options{Flow: Flow(9)}},
		{"negative K", Options{K: -1}},
		{"negative podem budget", Options{PodemBudget: -5}},
	}
	for _, tc := range cases {
		if err := tc.opts.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.opts)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
	c := mustBenchmark(t, "fig1a")
	if _, err := Run(context.Background(), c, InputStuckAt, Options{FaultSimLanes: 100}); err == nil {
		t.Error("Run accepted an invalid lane width")
	}
}
